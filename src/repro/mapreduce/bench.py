"""Wall-clock benchmarking of the execution backends (``repro bench``).

The simulator's cost model answers "what would this cost on the paper's
cluster?"; this module answers the orthogonal question "what does it
cost *here*, on real silicon?" by timing the same fixed-initial-centroid
k-means driver on every execution backend over synthetic corpora of
10^5–10^6 traces.

The workload is chosen to exercise exactly what the backends differ in:
multiple chunks (so there is parallelism to find), an iterative driver
(so the process backend's per-chunk shared-memory segments are reused
across jobs), a distributed-cache entry updated every iteration (so the
broadcast path is hot), and a combiner (so the shuffle stays small and
the timing isolates map-side compute + transport).

Results serialize to a small JSON document (see :func:`run_backend_benchmark`)
that doubles as a regression baseline: :func:`check_against_baseline`
compares a fresh run against a committed ``BENCH_backends.json`` and
flags slowdowns beyond a tolerance.  Absolute times are only comparable
on matching hardware, so the check compares raw seconds when the CPU
count matches the baseline's and falls back to serial-normalized ratios
(which cancel single-core speed) when it does not.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.hdfs import MB, SimulatedHDFS
from repro.mapreduce.runner import JobRunner

__all__ = [
    "synthetic_corpus",
    "synthetic_corpus_blocks",
    "synthetic_stream_corpus",
    "run_backend_benchmark",
    "run_spill_benchmark",
    "run_multitenant_benchmark",
    "run_query_benchmark",
    "run_stream_benchmark",
    "run_shuffle_benchmark",
    "run_attack_benchmark",
    "check_against_baseline",
    "check_shuffle_result",
    "check_shuffle_against_baseline",
    "render_shuffle_result",
    "check_attack_result",
    "check_attack_against_baseline",
    "render_attack_result",
    "check_multitenant_result",
    "check_multitenant_against_baseline",
    "check_query_result",
    "check_query_against_baseline",
    "check_stream_result",
    "check_stream_against_baseline",
    "render_result",
    "render_spill_result",
    "render_multitenant_result",
    "render_query_result",
    "render_stream_result",
    "DEFAULT_SIZES",
    "DEFAULT_BASELINE",
    "DEFAULT_SPILL_OUT",
    "DEFAULT_MULTITENANT_OUT",
    "DEFAULT_QUERY_OUT",
    "DEFAULT_STREAM_OUT",
    "DEFAULT_SHUFFLE_OUT",
    "DEFAULT_ATTACK_OUT",
    "DEFAULT_TENANT_WEIGHTS",
]

#: Corpus sizes the trajectory is measured over (traces).
DEFAULT_SIZES = (100_000, 1_000_000)

#: Committed baseline the ``--check`` mode compares against.
DEFAULT_BASELINE = Path("benchmarks") / "BENCH_backends.json"

#: Default artifact path for the spill-on/off trajectory.
DEFAULT_SPILL_OUT = Path("benchmarks") / "results" / "BENCH_spill.json"

#: Default artifact path (and ``--check`` baseline) for the
#: multi-tenant contention benchmark.
DEFAULT_MULTITENANT_OUT = Path("benchmarks") / "results" / "BENCH_multitenant.json"

#: The contention roster: three tenants with 3:2:1 weights.
DEFAULT_TENANT_WEIGHTS = {"alice": 3.0, "bob": 2.0, "carol": 1.0}

#: Default artifact path (and ``--check`` baseline) for the
#: query-serving trajectory.
DEFAULT_QUERY_OUT = Path("benchmarks") / "results" / "BENCH_query.json"

#: Default artifact path (and ``--check`` baseline) for the streaming
#: trajectory.
DEFAULT_STREAM_OUT = Path("benchmarks") / "results" / "BENCH_stream.json"

#: Default artifact path (and ``--check`` baseline) for the
#: shuffle-byte minimization trajectory.
DEFAULT_SHUFFLE_OUT = Path("benchmarks") / "results" / "BENCH_shuffle.json"

#: Default artifact path (and ``--check`` baseline) for the linkage
#: attack trajectory.
DEFAULT_ATTACK_OUT = Path("benchmarks") / "results" / "BENCH_attack.json"

_SCHEMA = 1
_SPILL_SCHEMA = 1
_MULTITENANT_SCHEMA = 1
_QUERY_SCHEMA = 1
_STREAM_SCHEMA = 1
_SHUFFLE_SCHEMA = 1
_ATTACK_SCHEMA = 1


def _blob_centers(rng: np.random.Generator, n_clusters: int) -> np.ndarray:
    return np.column_stack(
        (rng.uniform(39.6, 40.3, n_clusters), rng.uniform(116.0, 116.8, n_clusters))
    )


def synthetic_corpus(
    n_traces: int,
    seed: int = 0,
    n_clusters: int = 8,
    timestamp_step: float = 1.0,
) -> TraceArray:
    """A clustered corpus of ``n_traces`` synthetic mobility traces.

    Gaussian blobs around ``n_clusters`` centers in the Beijing bounding
    box — structured enough that k-means does real work, generated in
    O(n) NumPy time so corpus construction never dominates the benchmark.
    ``timestamp_step`` spaces consecutive timestamps: at the default 1 s
    the blob-hopping points read as fast movement, while a large step
    makes every trace stationary by DJ-Cluster's speed-filter definition.
    """
    rng = np.random.default_rng(seed)
    centers = _blob_centers(rng, n_clusters)
    which = rng.integers(0, n_clusters, n_traces)
    lat = centers[which, 0] + rng.normal(0.0, 0.03, n_traces)
    lon = centers[which, 1] + rng.normal(0.0, 0.03, n_traces)
    timestamp = np.arange(n_traces, dtype=np.float64) * timestamp_step
    return TraceArray.from_columns(["bench"], lat, lon, timestamp)


def synthetic_corpus_blocks(
    n_traces: int,
    seed: int = 0,
    n_clusters: int = 8,
    block: int = 100_000,
    timestamp_step: float = 1.0,
):
    """The blob corpus as a stream of ``block``-trace pieces.

    The out-of-core twin of :func:`synthetic_corpus`: pieces feed
    ``SimulatedHDFS.put_trace_stream`` so no more than one block plus
    one chunk is ever resident during ingestion.  The draw order differs
    from the one-shot generator, so the two corpora are statistically —
    not byte — identical; a benchmark always pairs cells from the same
    generator.
    """
    rng = np.random.default_rng(seed)
    centers = _blob_centers(rng, n_clusters)
    for start in range(0, n_traces, block):
        n = min(block, n_traces - start)
        which = rng.integers(0, n_clusters, n)
        lat = centers[which, 0] + rng.normal(0.0, 0.03, n)
        lon = centers[which, 1] + rng.normal(0.0, 0.03, n)
        timestamp = np.arange(start, start + n, dtype=np.float64) * timestamp_step
        yield TraceArray.from_columns(["bench"], lat, lon, timestamp)


def _time_one_run(
    corpus: TraceArray,
    backend: str,
    *,
    k: int,
    max_iter: int,
    chunk_mb: int,
    max_workers: int | None,
):
    """One timed k-means run on a fresh deployment; returns (seconds, result)."""
    from repro.algorithms.kmeans import run_kmeans_mapreduce

    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=chunk_mb * MB, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    init = corpus.coordinates()[:k].copy()
    workers = None if backend == "serial" else max_workers
    with JobRunner(hdfs, executor=backend, max_workers=workers) as runner:
        start = time.perf_counter()
        result = run_kmeans_mapreduce(
            runner,
            "input/traces",
            k=k,
            max_iter=max_iter,
            initial_centroids=init,
            use_combiner=True,
            workdir="tmp/kmeans",
        )
        elapsed = time.perf_counter() - start
    return elapsed, result


def run_backend_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    backends: Sequence[str] = BACKENDS,
    iterations: int = 2,
    *,
    k: int = 4,
    max_iter: int = 3,
    # 2 MB chunks @ 64 modelled bytes/trace: ~4 map tasks at 10^5 traces,
    # ~31 at 10^6 — enough fan-out for the pools to matter at both sizes.
    chunk_mb: int = 2,
    max_workers: int | None = None,
    seed: int = 0,
) -> dict[str, Any]:
    """Time the k-means driver on every backend at every corpus size.

    Each (size, backend) cell is run ``iterations`` times on a fresh
    simulated deployment and the *best* wall-clock is kept (minimum is
    the standard noise-robust estimator for repeated timings).  Before
    any timing is trusted, the run verifies every backend produced
    byte-identical centroids and the same iteration count as serial —
    a benchmark of diverging computations would be meaningless.
    """
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {list(BACKENDS)}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    results = []
    for size in sizes:
        corpus = synthetic_corpus(int(size), seed=seed)
        times: dict[str, float] = {}
        reference = None
        for backend in backends:
            best = None
            for _ in range(iterations):
                elapsed, result = _time_one_run(
                    corpus,
                    backend,
                    k=k,
                    max_iter=max_iter,
                    chunk_mb=chunk_mb,
                    max_workers=max_workers,
                )
                best = elapsed if best is None else min(best, elapsed)
            if reference is None:
                reference = result
            else:
                if not np.array_equal(result.centroids, reference.centroids):
                    raise RuntimeError(
                        f"backend {backend!r} diverged from {backends[0]!r} "
                        f"at size {size}: centroids differ"
                    )
                if result.n_iterations != reference.n_iterations:
                    raise RuntimeError(
                        f"backend {backend!r} diverged from {backends[0]!r} "
                        f"at size {size}: {result.n_iterations} != "
                        f"{reference.n_iterations} iterations"
                    )
            times[backend] = best
        entry: dict[str, Any] = {"size": int(size), "times_s": times}
        if "serial" in times:
            entry["speedup_vs_serial"] = {
                b: times["serial"] / t for b, t in times.items() if b != "serial"
            }
        results.append(entry)
    return {
        "schema": _SCHEMA,
        "workload": {
            "driver": "kmeans",
            "k": k,
            "max_iter": max_iter,
            "chunk_mb": chunk_mb,
            "combiner": True,
            "seed": seed,
        },
        "cpu_count": os.cpu_count(),
        "max_workers": max_workers,
        "iterations": iterations,
        "backends": list(backends),
        "results": results,
    }


def _times_by_size(doc: Mapping[str, Any]) -> dict[int, dict[str, float]]:
    return {int(e["size"]): dict(e["times_s"]) for e in doc.get("results", [])}


def check_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.25,
    min_seconds: float = 0.25,
) -> list[str]:
    """Regressions of ``current`` versus a committed ``baseline``.

    Returns a list of human-readable problems; empty means the run is
    within ``tolerance`` (fractional slowdown, default 25%) everywhere
    the two documents overlap.  When the CPU counts match, raw seconds
    are compared; otherwise each backend's time is normalized by the
    same run's serial time first, so a faster or slower host doesn't
    mask (or fake) a regression in the parallel machinery itself.

    Cells whose baseline wall-clock is under ``min_seconds`` are
    skipped: at tens of milliseconds, scheduler jitter alone exceeds any
    plausible tolerance, and a guard that cries wolf gets deleted.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    same_host = baseline.get("cpu_count") == current.get("cpu_count")
    cur, base = _times_by_size(current), _times_by_size(baseline)
    for size in sorted(set(cur) & set(base)):
        for backend in sorted(set(cur[size]) & set(base[size])):
            if base[size][backend] < min_seconds:
                continue
            if same_host:
                now, then = cur[size][backend], base[size][backend]
                metric = "wall-clock"
            else:
                if "serial" not in cur[size] or "serial" not in base[size]:
                    continue
                if backend == "serial":
                    continue
                now = cur[size][backend] / cur[size]["serial"]
                then = base[size][backend] / base[size]["serial"]
                metric = "serial-normalized time"
            if now > then * (1.0 + tolerance):
                problems.append(
                    f"{backend} @ {size:,} traces: {metric} regressed "
                    f"{now:.3f} vs baseline {then:.3f} "
                    f"(+{(now / then - 1.0) * 100:.0f}%, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
    if not set(cur) & set(base):
        problems.append("no overlapping corpus sizes between run and baseline")
    if problems:
        # Provenance up front: a host mismatch is the first thing to rule
        # out when a timing gate trips (a 1-core CI runner vs an 8-core
        # laptop compares serial-normalized ratios, not raw seconds).
        problems.insert(
            0,
            f"provenance: baseline recorded on cpu_count="
            f"{baseline.get('cpu_count')}, this run on cpu_count="
            f"{current.get('cpu_count')} ("
            + (
                "matching hosts, raw wall-clock compared"
                if same_host
                else "different hosts, serial-normalized ratios compared"
            )
            + ")",
        )
    return problems


def render_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one benchmark document."""
    lines = [
        f"execution-backend wall-clock (k-means, k={doc['workload']['k']}, "
        f"{doc['workload']['max_iter']} iterations, combiner on; "
        f"cpu_count={doc['cpu_count']}, best of {doc['iterations']})",
        "",
        f"{'traces':>12}  " + "".join(f"{b:>12}" for b in doc["backends"]),
    ]
    for entry in doc["results"]:
        row = f"{entry['size']:>12,}  "
        row += "".join(f"{entry['times_s'][b]:>11.3f}s" for b in doc["backends"])
        lines.append(row)
        speedups = entry.get("speedup_vs_serial")
        if speedups:
            row = f"{'vs serial':>12}  " + f"{'1.00x':>12}"
            row += "".join(
                f"{speedups[b]:>11.2f}x" for b in doc["backends"] if b != "serial"
            )
            lines.append(row)
    return "\n".join(lines)


def save_result(doc: Mapping[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_result(path: str | Path) -> dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# Out-of-core (spill) benchmark: wall-clock + peak RSS, budget on vs off.
# ---------------------------------------------------------------------------


def _spill_cell(
    size: int,
    budget_mb: float | None,
    *,
    k: int = 4,
    max_iter: int = 3,
    chunk_mb: int = 2,
    seed: int = 0,
    measure_rss: bool = True,
) -> dict[str, Any]:
    """One (size, budget) measurement: k-means without a combiner.

    The combiner is deliberately off so every map task emits one pair
    per trace — it is the map-output and shuffle volume that a memory
    budget has to tame, and with a combiner on there is nothing to
    spill.  The serial backend is used because ``ru_maxrss`` only
    meters *this* process; pool workers would hide their footprint in
    children.

    Meant to run inside a fresh subprocess when ``measure_rss`` is
    true: ``ru_maxrss`` is a lifetime high-water mark, so cells sharing
    a process would all report the largest cell's footprint.
    """
    from repro.algorithms.kmeans import run_kmeans_mapreduce

    hdfs = SimulatedHDFS(
        paper_cluster(4),
        chunk_size=chunk_mb * MB,
        seed=0,
        memory_budget_mb=budget_mb,
    )
    # Stream-ingest: the corpus is never materialized driver-side, so a
    # budgeted cell's residency is governed by the chunk store alone.
    hdfs.put_trace_stream("input/traces", synthetic_corpus_blocks(int(size), seed=seed))
    init = _blob_centers(np.random.default_rng(seed), k)
    with JobRunner(hdfs, executor="serial", memory_budget_mb=budget_mb) as runner:
        start = time.perf_counter()
        result = run_kmeans_mapreduce(
            runner,
            "input/traces",
            k=k,
            max_iter=max_iter,
            initial_centroids=init,
            use_combiner=False,
            workdir="tmp/kmeans",
        )
        elapsed = time.perf_counter() - start
        spill = runner.spill_stats.as_dict() if runner.spill_stats else None
    paging = hdfs.spill_stats.as_dict() if hdfs.spill_stats else None
    cell: dict[str, Any] = {
        "budget_mb": budget_mb,
        "elapsed_s": elapsed,
        "n_iterations": result.n_iterations,
        "centroids_sha256": hashlib.sha256(
            np.ascontiguousarray(result.centroids).tobytes()
        ).hexdigest(),
        "spill": spill,
        "paging": paging,
    }
    if measure_rss:
        import resource

        # ru_maxrss is KiB on Linux, bytes on macOS.
        unit = 1024 if sys.platform == "darwin" else 1
        peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / unit
        cell["peak_rss_mb"] = peak_kib / 1024.0
    else:
        cell["peak_rss_mb"] = None
    return cell


def _spill_cell_subprocess(params: Mapping[str, Any]) -> dict[str, Any]:
    """Run :func:`_spill_cell` in a fresh interpreter and return its JSON."""
    import repro

    code = (
        "import json, sys\n"
        "from repro.mapreduce.bench import _spill_cell\n"
        "params = json.load(sys.stdin)\n"
        "json.dump(_spill_cell(params.pop('size'), params.pop('budget_mb'),"
        " **params), sys.stdout)\n"
    )
    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = pkg_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        input=json.dumps(dict(params)),
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"spill benchmark cell failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def run_spill_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    budget_mb: float = 8.0,
    *,
    k: int = 4,
    max_iter: int = 3,
    chunk_mb: int = 2,
    seed: int = 0,
    isolate_cells: bool = True,
) -> dict[str, Any]:
    """Spill-on/off trajectory: wall-clock and peak RSS at each size.

    For each corpus size, the same combiner-less k-means run is timed
    twice — once unbudgeted (everything resident) and once under
    ``budget_mb`` (chunk store pages, map outputs and shuffle spill to
    disk).  Each cell runs in its own subprocess so ``ru_maxrss`` — a
    per-process lifetime high-water mark — meters that cell alone;
    ``isolate_cells=False`` keeps everything in-process for tests and
    reports ``peak_rss_mb: null``.

    Centroids must be byte-identical across the two cells of a size:
    the budget is an execution detail, never an answer change.
    """
    if budget_mb <= 0:
        raise ValueError("budget_mb must be positive")
    results = []
    for size in sizes:
        cells = {}
        for label, budget in (("unbudgeted", None), ("budgeted", budget_mb)):
            params = {
                "size": int(size),
                "budget_mb": budget,
                "k": k,
                "max_iter": max_iter,
                "chunk_mb": chunk_mb,
                "seed": seed,
                "measure_rss": isolate_cells,
            }
            if isolate_cells:
                cells[label] = _spill_cell_subprocess(params)
            else:
                cells[label] = _spill_cell(
                    params.pop("size"), params.pop("budget_mb"), **params
                )
        if cells["budgeted"]["centroids_sha256"] != cells["unbudgeted"]["centroids_sha256"]:
            raise RuntimeError(
                f"budgeted run diverged at size {size}: centroids differ"
            )
        if cells["budgeted"]["n_iterations"] != cells["unbudgeted"]["n_iterations"]:
            raise RuntimeError(
                f"budgeted run diverged at size {size}: iteration counts differ"
            )
        entry: dict[str, Any] = {"size": int(size), "cells": cells}
        on, off = cells["budgeted"], cells["unbudgeted"]
        if on["peak_rss_mb"] is not None and off["peak_rss_mb"] is not None:
            entry["rss_saved_mb"] = off["peak_rss_mb"] - on["peak_rss_mb"]
        entry["slowdown"] = (
            on["elapsed_s"] / off["elapsed_s"] if off["elapsed_s"] > 0 else None
        )
        results.append(entry)
    return {
        "schema": _SPILL_SCHEMA,
        "workload": {
            "driver": "kmeans",
            "k": k,
            "max_iter": max_iter,
            "chunk_mb": chunk_mb,
            "combiner": False,
            "backend": "serial",
            "seed": seed,
        },
        "budget_mb": budget_mb,
        "cpu_count": os.cpu_count(),
        "isolated_cells": isolate_cells,
        "results": results,
    }


# ---------------------------------------------------------------------------
# Multi-tenant contention benchmark (repro bench --multitenant).
# ---------------------------------------------------------------------------


def run_multitenant_benchmark(
    n_traces: int = 50_000,
    tenants: Mapping[str, float] | None = None,
    jobs_per_tenant: int = 4,
    *,
    k: int = 4,
    chunk_mb: int = 1,
    seed: int = 0,
) -> dict[str, Any]:
    """Contention run: a weighted tenant roster floods one JobService.

    Every tenant submits a mixed backlog — single-pass k-means jobs
    (map + combine + shuffle + reduce, per-job centroids through the
    tenant's distributed cache) and map-only sampling jobs (per-tenant
    window sizes, so nothing dedups across tenants) — against a *paused*
    service, then the dispatcher opens and drains the whole backlog
    under weighted fair share.  The first tenant additionally resubmits
    its first sampling spec verbatim under a fresh output path: the
    result-cache cell, which must come back as a hit with **zero** map
    tasks.

    Reported metrics split into the real and the simulated: wall-clock
    to drain the backlog (host-dependent, excluded from baseline
    checks) and the fair-share interleave's simulated makespan vs the
    serial sum, the contended-window fairness shares, and the cache
    economics — all deterministic, so they double as a regression
    baseline.
    """
    from repro.algorithms.kmeans import (
        CENTROIDS_CACHE_KEY,
        KMeansCombiner,
        KMeansMapper,
        KMeansReducer,
    )
    from repro.algorithms.sampling import SamplingMapper
    from repro.mapreduce.config import Configuration
    from repro.mapreduce.job import JobSpec
    from repro.mapreduce.service import JobService

    weights = dict(tenants) if tenants else dict(DEFAULT_TENANT_WEIGHTS)
    if jobs_per_tenant < 2:
        raise ValueError("jobs_per_tenant must be >= 2 (the mix needs both kinds)")
    corpus = synthetic_corpus(int(n_traces), seed=seed)
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=chunk_mb * MB, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    futures: dict[tuple[str, str], Any] = {}
    wall_start = time.perf_counter()
    with JobService(hdfs, tenants=weights, start=False) as service:
        # Backlog model: everything queues against a paused dispatcher,
        # so the drain order is a pure function of the weights.
        resubmit_tenant: str | None = None
        resubmit_spec: JobSpec | None = None
        n_kmeans = jobs_per_tenant // 2
        for ti, tenant in enumerate(sorted(weights)):
            client = service.client(tenant)
            for j in range(n_kmeans):
                # Per-(tenant, job) centroids: the submit-time cache
                # snapshot isolates job j from job j+1's publish, and
                # distinct centroids keep cache keys distinct.
                init = corpus.coordinates()[ti * k + j : ti * k + j + k].copy()
                client.cache.replace(CENTROIDS_CACHE_KEY, init)
                spec = JobSpec(
                    name=f"kmeans-{j}",
                    mapper=KMeansMapper,
                    reducer=KMeansReducer,
                    combiner=KMeansCombiner,
                    input_paths=["input/traces"],
                    output_path=f"tenants/{tenant}/out/kmeans-{j}",
                    conf=Configuration(
                        {"kmeans.distance": "squared_euclidean", "kmeans.k": k}
                    ),
                    num_reducers=min(k, service.cluster.total_reduce_slots()),
                )
                futures[(tenant, spec.name)] = client.submit(spec)
            for j in range(jobs_per_tenant - n_kmeans):
                spec = JobSpec(
                    name=f"sampling-{j}",
                    mapper=SamplingMapper,
                    input_paths=["input/traces"],
                    output_path=f"tenants/{tenant}/out/sampling-{j}",
                    conf=Configuration(
                        {
                            # ti offsets the window so no two tenants
                            # share a cache key.
                            "sampling.window_s": 60.0 * (j + 1) + ti,
                            "sampling.technique": "upper",
                        }
                    ),
                    map_cost_factor=0.6,
                )
                futures[(tenant, spec.name)] = client.submit(spec)
                if resubmit_spec is None:
                    resubmit_tenant, resubmit_spec = tenant, spec
        # The cache-hit cell.  Per-tenant FIFO dispatch guarantees the
        # original (the store) runs before the verbatim resubmission.
        assert resubmit_tenant is not None and resubmit_spec is not None
        resubmission = JobSpec(
            name="sampling-resubmit",
            mapper=resubmit_spec.mapper,
            input_paths=list(resubmit_spec.input_paths),
            output_path=f"tenants/{resubmit_tenant}/out/sampling-resubmit",
            conf=resubmit_spec.conf,
            map_cost_factor=resubmit_spec.map_cost_factor,
        )
        hit_future = service.submit(resubmission, tenant=resubmit_tenant)
        futures[(resubmit_tenant, resubmission.name)] = hit_future
        service.start()
        service.wait()
        wall = time.perf_counter() - wall_start
        report = service.report()
        hit_result = hit_future.result()
        cache = service.result_cache
        assert cache is not None
        if not hit_future.cache_hit or hit_result.n_map_tasks != 0:
            raise RuntimeError(
                "resubmission was not served from the result cache "
                f"(cache_hit={hit_future.cache_hit}, "
                f"n_map_tasks={hit_result.n_map_tasks})"
            )
        cache_stats = {
            "hits": cache.hits,
            "misses": cache.misses,
            "entries": len(cache),
        }
    return {
        "schema": _MULTITENANT_SCHEMA,
        "workload": {
            "n_traces": int(n_traces),
            "jobs_per_tenant": int(jobs_per_tenant),
            "mix": "kmeans single-pass + map-only sampling",
            "k": k,
            "chunk_mb": chunk_mb,
            "seed": seed,
        },
        "cpu_count": os.cpu_count(),
        "wall_clock_s": wall,
        "simulated": {
            "interleaved_makespan_s": report.interleaved_makespan_s,
            "serial_s": report.serial_s,
            "speedup_vs_serial": report.speedup,
            "contended_window_s": report.contended_window_s,
            "max_abs_fairness_deviation": report.max_abs_deviation,
        },
        "fairness": report.tenants,
        "result_cache": {
            **cache_stats,
            "resubmission": {
                "tenant": resubmit_tenant,
                "job": hit_result.job_name,
                "cache_hit": bool(hit_future.cache_hit),
                "n_map_tasks": int(hit_result.n_map_tasks),
                "setup_charge_s": hit_result.timing.total_s,
            },
        },
    }


def check_multitenant_result(
    doc: Mapping[str, Any], fairness_tolerance: float = 0.2
) -> list[str]:
    """Intrinsic gates on one multi-tenant document (no baseline needed).

    * no tenant's contended-window slot share deviates from its weight
      share by more than ``fairness_tolerance`` (the paper-level 20%
      fair-share gate);
    * the resubmission cell was a result-cache hit that ran zero map
      tasks;
    * the fair-share interleave is no slower than running the same jobs
      back to back.
    """
    problems: list[str] = []
    sim = doc.get("simulated", {})
    deviation = float(sim.get("max_abs_fairness_deviation", 1.0))
    if deviation > fairness_tolerance:
        problems.append(
            f"fairness: max |deviation| {deviation:.1%} exceeds "
            f"tolerance {fairness_tolerance:.0%}"
        )
    resub = doc.get("result_cache", {}).get("resubmission", {})
    if not resub.get("cache_hit"):
        problems.append("result cache: resubmission was not a cache hit")
    if resub.get("n_map_tasks", -1) != 0:
        problems.append(
            f"result cache: resubmission ran {resub.get('n_map_tasks')} "
            "map tasks (expected 0)"
        )
    if int(doc.get("result_cache", {}).get("hits", 0)) < 1:
        problems.append("result cache: no hits recorded")
    speedup = float(sim.get("speedup_vs_serial", 0.0))
    if speedup < 1.0:
        problems.append(
            f"interleave: simulated speedup vs serial {speedup:.2f}x < 1.00x"
        )
    return problems


def check_multitenant_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.01,
) -> list[str]:
    """Drift of the *simulated* metrics versus a committed baseline.

    Wall-clock is host-dependent and ignored; the simulated makespan,
    serial sum, and per-tenant fairness shares are deterministic given
    the same workload, so they must match within ``tolerance``
    (fractional for times, absolute for shares).
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    if baseline.get("workload") != current.get("workload"):
        problems.append("workload mismatch: run with the baseline's parameters")
        return problems
    cur_sim, base_sim = current.get("simulated", {}), baseline.get("simulated", {})
    for key in ("interleaved_makespan_s", "serial_s", "contended_window_s"):
        now, then = float(cur_sim.get(key, 0.0)), float(base_sim.get(key, 0.0))
        if then > 0 and abs(now - then) > then * tolerance:
            problems.append(
                f"simulated {key}: {now:.2f} vs baseline {then:.2f} "
                f"(tolerance {tolerance:.0%})"
            )
    cur_fair, base_fair = current.get("fairness", {}), baseline.get("fairness", {})
    for tenant in sorted(set(cur_fair) & set(base_fair)):
        now = float(cur_fair[tenant].get("share", 0.0))
        then = float(base_fair[tenant].get("share", 0.0))
        if abs(now - then) > tolerance:
            problems.append(
                f"fairness share of {tenant}: {now:.3f} vs baseline {then:.3f}"
            )
    return problems


def render_multitenant_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one multi-tenant benchmark document."""
    w = doc["workload"]
    sim = doc["simulated"]
    lines = [
        f"multi-tenant contention ({w['n_traces']:,} traces, "
        f"{w['jobs_per_tenant']} jobs/tenant, {w['mix']})",
        "",
        f"{'tenant':<10} {'weight':>7} {'jobs':>5} {'hits':>5} "
        f"{'slot-s':>9} {'share':>7} {'fair':>7} {'dev':>8}",
    ]
    for tenant in sorted(doc["fairness"]):
        row = doc["fairness"][tenant]
        lines.append(
            f"{tenant:<10} {row['weight']:>7.1f} {row['jobs']:>5} "
            f"{row['cache_hits']:>5} {row['slot_seconds']:>9.1f} "
            f"{row['share']:>6.1%} {row['weight_share']:>6.1%} "
            f"{row['deviation']:>+7.1%}"
        )
    resub = doc["result_cache"]["resubmission"]
    lines += [
        "",
        f"interleaved makespan {sim['interleaved_makespan_s']:.1f} sim s "
        f"vs serial {sim['serial_s']:.1f} sim s "
        f"({sim['speedup_vs_serial']:.2f}x), "
        f"max fairness deviation {sim['max_abs_fairness_deviation']:.1%} "
        f"over a {sim['contended_window_s']:.1f} s contended window",
        f"result cache: {doc['result_cache']['hits']} hit(s) / "
        f"{doc['result_cache']['misses']} miss(es); resubmission "
        f"{resub['job']!r} ran {resub['n_map_tasks']} map tasks "
        f"(setup charge {resub['setup_charge_s']:.1f} sim s)",
        f"wall-clock {doc['wall_clock_s']:.2f}s on cpu_count={doc['cpu_count']}",
    ]
    return "\n".join(lines)


def render_spill_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one spill benchmark document."""
    w = doc["workload"]
    lines = [
        f"out-of-core wall-clock + peak RSS (k-means, k={w['k']}, "
        f"{w['max_iter']} iterations, no combiner, serial backend; "
        f"budget {doc['budget_mb']} MB)",
        "",
        f"{'traces':>12}  {'mode':>10}  {'wall':>9}  {'peak RSS':>10}  "
        f"{'spilled':>10}  {'paged out':>10}",
    ]
    for entry in doc["results"]:
        for label in ("unbudgeted", "budgeted"):
            cell = entry["cells"][label]
            rss = (
                f"{cell['peak_rss_mb']:>8.1f}MB"
                if cell["peak_rss_mb"] is not None
                else f"{'n/a':>10}"
            )
            spill = cell.get("spill") or {}
            spilled = spill.get("run_bytes", 0) + spill.get("map_spill_bytes", 0)
            paged = (cell.get("paging") or {}).get("page_out_bytes", 0)
            lines.append(
                f"{entry['size']:>12,}  {label:>10}  "
                f"{cell['elapsed_s']:>8.2f}s  {rss}  "
                f"{spilled / MB:>8.1f}MB  {paged / MB:>8.1f}MB"
            )
        extras = []
        if entry.get("slowdown") is not None:
            extras.append(f"slowdown {entry['slowdown']:.2f}x")
        if entry.get("rss_saved_mb") is not None:
            extras.append(f"RSS saved {entry['rss_saved_mb']:.1f} MB")
        if extras:
            lines.append(f"{'':>12}  {', '.join(extras)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Query-serving benchmark (repro bench --query).
# ---------------------------------------------------------------------------


def _query_workload(
    corpus, n_queries: int, seed: int
) -> list[tuple[str, tuple[float, ...]]]:
    """A seeded mix of point/range/radius/kNN queries anchored on corpus
    points (so point lookups actually hit) — deterministic given ``seed``."""
    rng = np.random.default_rng(seed + 1000)
    coords = corpus.coordinates()
    anchors = coords[rng.integers(0, len(coords), n_queries)]
    kinds = ("point", "range", "radius", "knn")
    out: list[tuple[str, tuple[float, ...]]] = []
    for i in range(n_queries):
        lat, lon = float(anchors[i, 0]), float(anchors[i, 1])
        kind = kinds[i % len(kinds)]
        if kind == "point":
            out.append(("point", (lat, lon)))
        elif kind == "range":
            out.append(("range", (lat - 0.01, lon - 0.01, lat + 0.01, lon + 0.01)))
        elif kind == "radius":
            out.append(("radius", (lat, lon, 250.0)))
        else:
            out.append(("knn", (lat, lon, 8)))
    return out


def run_query_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    budget_mb: float = 8.0,
    *,
    n_queries: int = 64,
    chunk_mb: int = 2,
    seed: int = 0,
) -> dict[str, Any]:
    """The serving trajectory: build once, reuse from the catalog, query.

    For each corpus size the same Figure-6 MapReduce build runs twice —
    once on an *unbudgeted* twin deployment whose in-memory tree is kept
    as the byte-identity reference, and once through the
    :class:`~repro.index.persistent.IndexCatalog` on a deployment capped
    at ``budget_mb`` (pages live in the spilling payload store, so at
    10^6 points the index is served mostly from disk).  A second
    ``ensure`` on the catalog must come back as an ``index_reuse`` hit
    that runs **zero** jobs, and a seeded point/range/radius/kNN workload
    through the :class:`~repro.index.persistent.QueryEngine` must answer
    byte-identically to the in-memory reference.

    Page-fault counts, fault bytes, and simulated serving latency are
    deterministic given the workload, so they double as the regression
    baseline; wall-clock columns are recorded but never gated.
    """
    from repro.index.persistent import IndexCatalog, QueryEngine
    from repro.index.rtree import Rect
    from repro.index.rtree_mr import build_rtree_mapreduce
    from repro.observability.events import EventKind

    if budget_mb <= 0:
        raise ValueError("budget_mb must be positive")
    if n_queries < 4:
        raise ValueError("n_queries must be >= 4 (one of each kind)")
    results = []
    for size in sizes:
        corpus = synthetic_corpus(int(size), seed=seed)
        # Reference: the identical build on an unbudgeted twin keeps the
        # merged tree in memory.  The simulator is deterministic, so this
        # tree is byte-for-byte the one the catalog persists below.
        ref_hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=chunk_mb * MB, seed=0)
        ref_hdfs.put_trace_array("input/traces", corpus)
        with JobRunner(ref_hdfs, executor="serial") as ref_runner:
            n_partitions = max(1, ref_runner.cluster.total_reduce_slots() // 2)
            ref_tree = build_rtree_mapreduce(
                ref_runner,
                "input/traces",
                n_partitions=n_partitions,
                workdir="tmp/rtree-ref",
            ).tree

        hdfs = SimulatedHDFS(
            paper_cluster(4),
            chunk_size=chunk_mb * MB,
            seed=0,
            memory_budget_mb=budget_mb,
        )
        hdfs.put_trace_array("input/traces", corpus)
        build_wall = time.perf_counter()
        with JobRunner(hdfs, executor="serial", memory_budget_mb=budget_mb) as runner:
            catalog = IndexCatalog(hdfs)
            index, built = catalog.ensure(
                runner, "input/traces", n_partitions=n_partitions
            )
            build_wall = time.perf_counter() - build_wall
            if not built:
                raise RuntimeError(f"first ensure at size {size} was not a build")
            entry = catalog.entries()[0]

            def n_job_starts() -> int:
                return sum(
                    1 for e in runner.history.events if e.kind == EventKind.JOB_START
                )

            before = n_job_starts()
            index, rebuilt = catalog.ensure(
                runner, "input/traces", n_partitions=n_partitions
            )
            reuse_jobs = n_job_starts() - before

            engine = QueryEngine(index, hdfs=hdfs, history=runner.history)
            identical = True
            query_wall = time.perf_counter()
            for kind, args in _query_workload(corpus, n_queries, seed):
                if kind == "point":
                    same = np.array_equal(
                        engine.point(*args),
                        ref_tree.query_rect(Rect(args[0], args[1], args[0], args[1])),
                    )
                elif kind == "range":
                    same = np.array_equal(
                        engine.range(*args), ref_tree.query_rect(Rect(*args))
                    )
                elif kind == "radius":
                    same = np.array_equal(
                        engine.radius(*args), ref_tree.query_radius(*args)
                    )
                else:
                    same = engine.knn(*args) == ref_tree.knn(*args)
                identical = identical and same
            query_wall = time.perf_counter() - query_wall
            serving = engine.report()
        results.append(
            {
                "size": int(size),
                "n_points": int(entry.n_points),
                "n_pages": int(index.meta["n_pages"]),
                "index_bytes": int(index.meta["page_bytes"]),
                "build_sim_seconds": float(entry.build_sim_seconds),
                "build_wall_s": build_wall,
                "query_wall_s": query_wall,
                "reuse": {"built_first": bool(built), "rebuilt": bool(rebuilt), "jobs": int(reuse_jobs)},
                "identical_to_inmemory": bool(identical),
                "serving": serving,
            }
        )
    return {
        "schema": _QUERY_SCHEMA,
        "workload": {
            "driver": "query-serving",
            "n_queries": int(n_queries),
            "mix": "point/range/radius/knn round-robin",
            "chunk_mb": chunk_mb,
            "seed": seed,
        },
        "budget_mb": budget_mb,
        "cpu_count": os.cpu_count(),
        "results": results,
    }


def check_query_result(doc: Mapping[str, Any]) -> list[str]:
    """Intrinsic gates on one query-serving document (no baseline needed).

    * every size answered byte-identically to the in-memory reference
      tree (the whole point of the persistent format);
    * the second catalog ``ensure`` was a reuse hit that ran zero jobs;
    * any index larger than the memory budget actually paged — a
      zero-fault run over a 3x-budget index means the budget was not
      enforced and the "serves under N MB" claim is untested.
    """
    problems: list[str] = []
    budget_bytes = float(doc.get("budget_mb", 0.0)) * MB
    for entry in doc.get("results", []):
        size = entry.get("size")
        if not entry.get("identical_to_inmemory"):
            problems.append(
                f"{size:,} points: served answers diverged from the "
                "in-memory reference tree"
            )
        reuse = entry.get("reuse", {})
        if not reuse.get("built_first"):
            problems.append(f"{size:,} points: first ensure was not a build")
        if reuse.get("rebuilt"):
            problems.append(f"{size:,} points: second ensure rebuilt the index")
        if reuse.get("jobs", -1) != 0:
            problems.append(
                f"{size:,} points: catalog reuse ran {reuse.get('jobs')} "
                "jobs (expected 0)"
            )
        serving = entry.get("serving", {})
        if entry.get("index_bytes", 0) > budget_bytes and not serving.get(
            "page_faults"
        ):
            problems.append(
                f"{size:,} points: index ({entry.get('index_bytes', 0) / MB:.1f} MB) "
                f"exceeds the {doc.get('budget_mb')} MB budget but served "
                "with zero page faults"
            )
    if not doc.get("results"):
        problems.append("no results in document")
    return problems


def check_query_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.01,
) -> list[str]:
    """Drift of the deterministic serving metrics versus a baseline.

    Build sim-seconds, page faults, fault bytes, simulated serving
    latency and result counts are pure functions of (corpus seed, build
    params, budget, workload); wall-clock columns are host-dependent and
    ignored.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    if baseline.get("workload") != current.get("workload") or baseline.get(
        "budget_mb"
    ) != current.get("budget_mb"):
        problems.append("workload mismatch: run with the baseline's parameters")
        return problems
    cur = {int(e["size"]): e for e in current.get("results", [])}
    base = {int(e["size"]): e for e in baseline.get("results", [])}
    for size in sorted(set(cur) & set(base)):
        pairs = [
            ("build_sim_seconds", cur[size], base[size]),
            ("n_pages", cur[size], base[size]),
            ("index_bytes", cur[size], base[size]),
        ] + [
            (key, cur[size]["serving"], base[size]["serving"])
            for key in ("page_faults", "fault_bytes", "latency_s", "results")
        ]
        for key, now_doc, then_doc in pairs:
            now, then = float(now_doc.get(key, 0.0)), float(then_doc.get(key, 0.0))
            if abs(now - then) > max(abs(then) * tolerance, 1e-9):
                problems.append(
                    f"{size:,} points: {key} {now:g} vs baseline {then:g} "
                    f"(tolerance {tolerance:.0%})"
                )
    if not set(cur) & set(base):
        problems.append("no overlapping corpus sizes between run and baseline")
    return problems


def render_query_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one query-serving benchmark document."""
    w = doc["workload"]
    lines = [
        f"index serving ({w['n_queries']} queries, {w['mix']}; "
        f"budget {doc['budget_mb']} MB)",
        "",
        f"{'points':>12}  {'index':>9}  {'build sim':>10}  {'reuse':>6}  "
        f"{'faults':>7}  {'paged in':>9}  {'sim latency':>12}  {'identical':>9}",
    ]
    for entry in doc["results"]:
        serving = entry["serving"]
        reuse = entry["reuse"]
        hit = "hit" if not reuse["rebuilt"] and reuse["jobs"] == 0 else "MISS"
        lines.append(
            f"{entry['n_points']:>12,}  {entry['index_bytes'] / MB:>7.1f}MB  "
            f"{entry['build_sim_seconds']:>9.1f}s  {hit:>6}  "
            f"{serving['page_faults']:>7}  {serving['fault_bytes'] / MB:>7.1f}MB  "
            f"{serving['mean_latency_ms']:>9.2f}ms  "
            f"{'yes' if entry['identical_to_inmemory'] else 'NO':>9}"
        )
        lines.append(
            f"{'':>12}  build wall {entry['build_wall_s']:.2f}s, "
            f"{w['n_queries']} queries in {entry['query_wall_s']:.3f}s wall"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Streaming benchmark (repro bench --stream).
# ---------------------------------------------------------------------------


def synthetic_stream_corpus(
    n_points: int,
    n_users: int = 50,
    n_windows: int = 10,
    window_s: float = 3600.0,
    seed: int = 0,
    n_clusters: int = 8,
) -> TraceArray:
    """A stationary multi-user corpus cut for streaming benchmarks.

    Every user dwells at two fixed anchors — a "home" and a "work"
    offset from the shared blob centers — and hops between them on a
    slow square wave (period 1.5 windows).  Two properties follow by
    construction.  First, consecutive *sampled* points at an anchor are
    tens of meters apart over hundreds of seconds, i.e. stationary by
    DJ-Cluster's speed-filter definition, so the windowed POI extraction
    has real clusters to find.  Second, the blob structure is identical
    from window to window, so k-means warm-started from the previous
    window's centroids converges in strictly fewer iterations than a
    cold start — the incremental-analysis speedup the streaming layer
    claims, made measurable.
    """
    if n_users < 1 or n_windows < 1:
        raise ValueError("n_users and n_windows must be positive")
    rng = np.random.default_rng(seed)
    centers = _blob_centers(rng, n_clusters)
    home = centers[np.arange(n_users) % n_clusters] + rng.normal(
        0.0, 0.004, (n_users, 2)
    )
    work = centers[(np.arange(n_users) + 3) % n_clusters] + rng.normal(
        0.0, 0.004, (n_users, 2)
    )
    per_user = max(1, n_points // n_users)
    n = per_user * n_users
    ui = np.repeat(np.arange(n_users), per_user)
    idx = np.tile(np.arange(per_user), n_users)
    span = n_windows * window_s
    # Evenly spaced emissions with a per-user phase so no two feeds
    # share a timestamp; max(ts) < span keeps exactly n_windows windows.
    ts = (idx + ui / n_users) * (span / per_user)
    period = 1.5 * window_s
    at_work = ((ts // period).astype(np.int64) + ui) % 2 == 1
    anchor = np.where(at_work[:, None], work[ui], home[ui])
    lat = anchor[:, 0] + rng.normal(0.0, 3e-4, n)
    lon = anchor[:, 1] + rng.normal(0.0, 3e-4, n)
    users = np.array([f"u{i:04d}" for i in range(n_users)])
    return TraceArray.from_columns(users[ui], lat, lon, ts, np.zeros(n))


def run_stream_benchmark(
    n_points: int = 100_000,
    n_users: int = 50,
    n_windows: int = 10,
    window_s: float = 3600.0,
    *,
    k: int = 8,
    chunk_mb: int = 2,
    seed: int = 0,
    executors: Sequence[str] = ("serial", "threads", "processes"),
) -> dict[str, Any]:
    """The streaming trajectory: warm windows, cold control, equivalence.

    Three measurements over one stationary corpus under a fixed,
    feed-only chaos schedule (late/lost/duplicate batches — no engine
    faults, so every run completes):

    * a **warm** streaming run through a single-tenant
      :class:`~repro.mapreduce.service.JobService` — per-window simulated
      latency, k-means iterations, cache hits, late/lost accounting —
      followed by a verbatim resubmission of the last window's sampling
      job, which must come back as a result-cache hit with zero map
      tasks;
    * a **cold** control (``warm_start=False``, same datasets): the warm
      run must spend strictly fewer total k-means iterations;
    * the **equivalence matrix**: the same schedule re-run as a batch
      job sequence and as streaming runs on every executor backend —
      all byte-identical.

    Everything but the wall-clock block is deterministic given the
    parameters, so the document doubles as a regression baseline for
    ``repro bench --stream --check``.
    """
    from repro.algorithms.djcluster import DJClusterParams
    from repro.algorithms.sampling import run_sampling_job
    from repro.mapreduce.failures import ChaosSchedule
    from repro.mapreduce.service import JobService
    from repro.streaming.check import run_stream, run_stream_equivalence
    from repro.streaming.manager import StreamingJobManager
    from repro.streaming.source import StreamSource

    if n_windows < 2:
        raise ValueError("n_windows must be >= 2 (warm start needs a history)")
    corpus = synthetic_stream_corpus(
        int(n_points), n_users=n_users, n_windows=n_windows,
        window_s=window_s, seed=seed,
    )
    chaos = ChaosSchedule(
        seed=seed + 101,
        late_batch_prob=0.08,
        lost_batch_prob=0.03,
        dup_batch_prob=0.05,
    )
    manager_kwargs: dict[str, Any] = dict(
        k=k,
        max_iter=25,
        seed=seed,
        sampling_window_s=600.0,
        dj_params=DJClusterParams(radius_m=150.0, min_pts=5),
    )
    tenant = "bench-stream"

    # Warm streaming run on a service kept open for the replay probe.
    hdfs = SimulatedHDFS(paper_cluster(6), chunk_size=chunk_mb * MB, seed=0)
    source = StreamSource(corpus, window_s, chaos=chaos, name=tenant)
    warm_wall = time.perf_counter()
    with JobService(hdfs, tenants={tenant: 1.0, "replay": 1.0}) as service:
        client = service.client(tenant)
        manager = StreamingJobManager(client, name=tenant, **manager_kwargs)
        warm = manager.run(source)
        warm_wall = time.perf_counter() - warm_wall
        # Result-cache probe: a second tenant resubmits the first
        # non-empty window's sampling job verbatim under a fresh output
        # path.  The cache key is (spec fingerprint, input dataset
        # versions, distributed-cache snapshot); the replay tenant's
        # cache is empty — exactly the snapshot the original window-0
        # sampling ran under, before any k-means centroids were
        # published — so this must be served with zero map tasks.
        first = min(
            (r for r in warm.results if r.window.n_points),
            key=lambda r: r.window.index,
        )
        replay = run_sampling_job(
            service.client("replay"),
            first.window.path,
            f"streams/{tenant}/replay/sampled",
            manager_kwargs["sampling_window_s"],
            technique="upper",
            name=f"{tenant}-replay-sample",
        )
        replay_hits = service.result_cache.hits if service.result_cache else 0

    # Cold control: identical schedule, no warm start.
    cold_wall = time.perf_counter()
    cold = run_stream(
        corpus, window_s, mode="service", chaos=chaos, tenant=tenant,
        chunk_size=chunk_mb * MB, warm_start=False, **manager_kwargs,
    )
    cold_wall = time.perf_counter() - cold_wall

    # Equivalence matrix: batch baseline vs every executor backend.
    equiv_wall = time.perf_counter()
    report = run_stream_equivalence(
        corpus, window_s, chaos=chaos,
        executors=tuple(executors), max_workers=2,
        tenant=tenant, chunk_size=chunk_mb * MB, **manager_kwargs,
    )
    equiv_wall = time.perf_counter() - equiv_wall

    warm_it = warm.total_kmeans_iterations
    cold_it = cold.total_kmeans_iterations
    return {
        "schema": _STREAM_SCHEMA,
        "workload": {
            "driver": "streaming",
            "n_points": len(corpus),
            "n_users": int(n_users),
            "n_windows": int(n_windows),
            "window_s": float(window_s),
            "k": int(k),
            "max_iter": int(manager_kwargs["max_iter"]),
            "sampling_window_s": float(manager_kwargs["sampling_window_s"]),
            "chunk_mb": chunk_mb,
            "seed": seed,
            "chaos": {
                "seed": chaos.seed,
                "late_batch_prob": chaos.late_batch_prob,
                "lost_batch_prob": chaos.lost_batch_prob,
                "dup_batch_prob": chaos.dup_batch_prob,
            },
        },
        "cpu_count": os.cpu_count(),
        "wall_clock_s": {
            "warm": warm_wall,
            "cold": cold_wall,
            "equivalence": equiv_wall,
        },
        "stream": {
            "signature": warm.signature(),
            "n_windows": len(warm.results),
            "total_points": int(source.total_points),
            "late_points": int(warm.late_points),
            "lost_points": int(warm.lost_points),
            "cache_hits": int(warm.total_cache_hits),
            "windows": warm.timeline.rows,
        },
        "warm_start": {
            "warm_iterations": int(warm_it),
            "cold_iterations": int(cold_it),
            "saved_iterations": int(cold_it - warm_it),
            "savings_pct": (
                round(100.0 * (cold_it - warm_it) / cold_it, 2)
                if cold_it else 0.0
            ),
        },
        "result_cache": {
            "replay_job": f"{tenant}-replay-sample",
            "cache_hit": bool(replay.n_map_tasks == 0),
            "n_map_tasks": int(replay.n_map_tasks),
            "service_hits": int(replay_hits),
        },
        "equivalence": {
            "baseline": report.baseline.label,
            "identical": bool(report.identical),
            "cells": [
                {
                    "label": c.label,
                    "signature": c.signature,
                    "match": (
                        not c.clean_failure
                        and c.signature == report.baseline.signature
                    ),
                    "clean_failure": c.failed,
                }
                for c in [report.baseline, *report.cells]
            ],
        },
    }


def check_stream_result(doc: Mapping[str, Any]) -> list[str]:
    """Intrinsic gates on one streaming document (no baseline needed).

    * the run covered at least 10 windows of at least 10^5 points;
    * warm-started k-means spent **strictly fewer** total iterations
      than the cold control — the incremental-analysis claim;
    * every equivalence cell (all executor backends, streaming and
      batch) was byte-identical;
    * the fixed chaos schedule actually rerouted feed batches (late or
      lost points observed), so watermark handling was exercised;
    * the verbatim sampling resubmission was served from the result
      cache with zero map tasks.
    """
    problems: list[str] = []
    w = doc.get("workload", {})
    stream = doc.get("stream", {})
    if int(stream.get("n_windows", 0)) < 10:
        problems.append(
            f"coverage: only {stream.get('n_windows')} windows (expected >= 10)"
        )
    if int(stream.get("total_points", 0)) < 100_000:
        problems.append(
            f"coverage: only {stream.get('total_points')} points "
            "(expected >= 100,000)"
        )
    ws = doc.get("warm_start", {})
    warm_it = int(ws.get("warm_iterations", -1))
    cold_it = int(ws.get("cold_iterations", -1))
    if not 0 <= warm_it < cold_it:
        problems.append(
            f"warm start: {warm_it} iterations vs cold {cold_it} "
            "(expected strictly fewer)"
        )
    if not doc.get("equivalence", {}).get("identical"):
        problems.append("equivalence: streaming diverged from the batch sequence")
    for cell in doc.get("equivalence", {}).get("cells", []):
        if cell.get("clean_failure"):
            problems.append(
                f"equivalence: {cell.get('label')} failed: "
                f"{cell.get('clean_failure')}"
            )
    if int(stream.get("late_points", 0)) + int(stream.get("lost_points", 0)) <= 0:
        problems.append("chaos: no late or lost points (feed faults never fired)")
    cache = doc.get("result_cache", {})
    if not cache.get("cache_hit"):
        problems.append("result cache: sampling resubmission was not a hit")
    if cache.get("n_map_tasks", -1) != 0:
        problems.append(
            f"result cache: resubmission ran {cache.get('n_map_tasks')} "
            "map tasks (expected 0)"
        )
    if len(stream.get("windows", [])) != int(stream.get("n_windows", -1)):
        problems.append("stream: window row count does not match n_windows")
    _ = w
    return problems


def check_stream_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
) -> list[str]:
    """Drift of the deterministic streaming sections versus a baseline.

    The run signature, per-window rows (simulated latency included — the
    simtime clock is deterministic), warm/cold iteration counts, and the
    equivalence matrix are pure functions of the workload parameters;
    only the wall-clock block is host-dependent and ignored.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    if baseline.get("workload") != current.get("workload"):
        problems.append("workload mismatch: run with the baseline's parameters")
        return problems
    for section in ("stream", "warm_start", "equivalence", "result_cache"):
        if current.get(section) != baseline.get(section):
            problems.append(
                f"deterministic section {section!r} drifted from the baseline"
            )
    return problems


def render_stream_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one streaming benchmark document."""
    w = doc["workload"]
    stream = doc["stream"]
    ws = doc["warm_start"]
    wall = doc["wall_clock_s"]
    lines = [
        f"streaming windows ({stream['total_points']:,} points, "
        f"{stream['n_windows']} windows of {w['window_s']:g}s, "
        f"k={w['k']}, feed chaos on)",
        "",
        f"{'win':>4} {'points':>8} {'late':>6} {'lost':>6} {'dup':>5} "
        f"{'sampled':>8} {'k-it':>5} {'warm':>5} {'pois':>5} "
        f"{'risk':>6} {'sim-lat':>9} {'hits':>5}",
    ]
    for r in stream["windows"]:
        lines.append(
            f"{r['window']:>4} {r['n_points']:>8,} {r['late_points']:>6} "
            f"{r['lost_points']:>6} {r['dup_points']:>5} "
            f"{r['n_sampled']:>8,} {r['kmeans_iterations']:>5} "
            f"{('yes' if r['warm_start'] else 'no'):>5} {r['n_pois']:>5} "
            f"{r['risk']:>6.3f} {r['latency_s']:>8.1f}s {r['cache_hits']:>5}"
        )
    cells = doc["equivalence"]["cells"]
    matrix = ", ".join(
        f"{c['label']}={'ok' if c['match'] else 'FAIL'}" for c in cells
    )
    cache = doc["result_cache"]
    lines += [
        "",
        f"warm start: {ws['warm_iterations']} iterations vs "
        f"{ws['cold_iterations']} cold "
        f"({ws['saved_iterations']} saved, {ws['savings_pct']:.0f}%)",
        f"equivalence: {matrix}",
        f"result cache: replay {cache['replay_job']!r} "
        f"{'hit' if cache['cache_hit'] else 'MISS'} "
        f"({cache['n_map_tasks']} map tasks)",
        f"wall-clock warm {wall['warm']:.2f}s, cold {wall['cold']:.2f}s, "
        f"equivalence {wall['equivalence']:.2f}s "
        f"on cpu_count={doc['cpu_count']}",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shuffle-byte minimization benchmark (repro bench --shuffle).
# ---------------------------------------------------------------------------


def _shuffle_cell(
    corpus: TraceArray,
    backend: str,
    mode: str,
    *,
    k: int,
    max_iter: int,
    chunk_mb: int,
    max_workers: int | None,
) -> dict[str, Any]:
    """One timed k-means run in one shuffle mode on a fresh deployment.

    ``mode="combiner"`` is the object-level combiner path (the previous
    best); ``mode="aggregation"`` declares the k-means reduce as its
    :class:`~repro.algorithms.kmeans.KMeansAggregation` monoid, which
    turns on map-side vectorized pre-aggregation, the metadata-only
    shuffle, and locality-aware reduce placement.
    """
    from repro.algorithms.kmeans import run_kmeans_mapreduce
    from repro.observability.events import EventKind

    if mode not in ("combiner", "aggregation"):
        raise ValueError(f"unknown shuffle mode {mode!r}")
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=chunk_mb * MB, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    init = corpus.coordinates()[:k].copy()
    workers = None if backend == "serial" else max_workers
    with JobRunner(
        hdfs,
        executor=backend,
        max_workers=workers,
        reduce_locality=(mode == "aggregation"),
    ) as runner:
        start = time.perf_counter()
        result = run_kmeans_mapreduce(
            runner,
            "input/traces",
            k=k,
            max_iter=max_iter,
            initial_centroids=init,
            use_combiner=(mode == "combiner"),
            use_aggregation=(mode == "aggregation"),
            workdir="tmp/kmeans",
        )
        elapsed = time.perf_counter() - start
        preagg = {"envelopes": 0, "raw_records": 0, "cross_node_bytes": 0}
        for event in runner.history.events:
            if event.kind == EventKind.SHUFFLE_PREAGG:
                preagg["envelopes"] += int(event.data.get("envelopes", 0))
                preagg["raw_records"] += int(event.data.get("raw_records", 0))
                preagg["cross_node_bytes"] += int(
                    event.data.get("cross_node_bytes", 0)
                )
    return {
        "wall_s": elapsed,
        "sim_seconds": result.total_sim_seconds,
        "shuffle_bytes": int(sum(s.shuffle_bytes for s in result.history)),
        "n_iterations": int(result.n_iterations),
        "centroids_sha256": hashlib.sha256(
            np.ascontiguousarray(result.centroids).tobytes()
        ).hexdigest(),
        "preagg": preagg if mode == "aggregation" else None,
    }


def run_shuffle_benchmark(
    n_traces: int = 1_000_000,
    backends: Sequence[str] = BACKENDS,
    *,
    k: int = 11,
    max_iter: int = 2,
    chunk_mb: int = 2,
    max_workers: int | None = None,
    seed: int = 0,
    reps: int = 2,
) -> dict[str, Any]:
    """Shuffle bytes moved: combiner-only vs the aggregation algebra.

    The same fixed-initial-centroid k-means run (k=``k``,
    ``max_iter`` iterations over 10^6 traces by default) is measured in
    two shuffle modes on every backend.  Per (mode, backend) cell the
    best of ``reps`` wall-clocks is kept; the shuffle-byte totals,
    simulated seconds, pre-agg accounting, and centroid digests are
    deterministic and identical across reps.

    Two identities gate the numbers before any ratio is reported: within
    a mode every backend must produce byte-identical centroids, and both
    modes must converge in the same iteration count.  (Across modes the
    centroids agree to float rounding, not bytes — the combiner reduce
    folds task partials in arrival order while the aggregation reduce
    uses the canonical node-major merge tree.)
    """
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {list(BACKENDS)}")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    corpus = synthetic_corpus(int(n_traces), seed=seed)
    modes: dict[str, dict[str, dict[str, Any]]] = {}
    for mode in ("combiner", "aggregation"):
        cells: dict[str, dict[str, Any]] = {}
        for backend in backends:
            best: dict[str, Any] | None = None
            for _ in range(reps):
                cell = _shuffle_cell(
                    corpus,
                    backend,
                    mode,
                    k=k,
                    max_iter=max_iter,
                    chunk_mb=chunk_mb,
                    max_workers=max_workers,
                )
                if best is None or cell["wall_s"] < best["wall_s"]:
                    best = cell
            cells[backend] = best
        reference = cells[backends[0]]
        for backend in backends:
            if cells[backend]["centroids_sha256"] != reference["centroids_sha256"]:
                raise RuntimeError(
                    f"backend {backend!r} diverged from {backends[0]!r} in "
                    f"mode {mode!r}: centroids differ"
                )
            if cells[backend]["shuffle_bytes"] != reference["shuffle_bytes"]:
                raise RuntimeError(
                    f"backend {backend!r} diverged from {backends[0]!r} in "
                    f"mode {mode!r}: shuffle bytes differ"
                )
        modes[mode] = cells
    first = backends[0]
    combiner_bytes = modes["combiner"][first]["shuffle_bytes"]
    agg_bytes = modes["aggregation"][first]["shuffle_bytes"]
    return {
        "schema": _SHUFFLE_SCHEMA,
        "workload": {
            "driver": "kmeans",
            "n_traces": int(n_traces),
            "k": int(k),
            "max_iter": int(max_iter),
            "chunk_mb": int(chunk_mb),
            "cluster_workers": 4,
            "seed": int(seed),
        },
        "cpu_count": os.cpu_count(),
        "max_workers": max_workers,
        "reps": int(reps),
        "backends": list(backends),
        "modes": modes,
        "shuffle_bytes": {
            "combiner": int(combiner_bytes),
            "aggregation": int(agg_bytes),
            "ratio": (combiner_bytes / agg_bytes) if agg_bytes else None,
            "cross_node_bytes": int(
                modes["aggregation"][first]["preagg"]["cross_node_bytes"]
            ),
        },
    }


def check_shuffle_result(doc: Mapping[str, Any], min_ratio: float = 10.0) -> list[str]:
    """Intrinsic gates on one shuffle document (no baseline needed).

    * the aggregation algebra moves at least ``min_ratio`` x fewer
      shuffle bytes than the combiner-only path — the headline claim;
    * within each mode, every backend produced byte-identical centroids
      and identical shuffle-byte totals;
    * the aggregation cells actually pre-aggregated (envelopes > 0 and
      raw records folded > envelopes shipped);
    * cross-node bytes never exceed total shuffle bytes.
    """
    problems: list[str] = []
    ratio = (doc.get("shuffle_bytes") or {}).get("ratio")
    if ratio is None or float(ratio) < min_ratio:
        problems.append(
            f"shuffle bytes: aggregation/combiner ratio {ratio if ratio is None else f'{ratio:.1f}'}x "
            f"is below the {min_ratio:g}x floor"
        )
    modes = doc.get("modes", {})
    for mode, cells in modes.items():
        digests = {c["centroids_sha256"] for c in cells.values()}
        if len(digests) != 1:
            problems.append(f"mode {mode!r}: centroids differ across backends")
        volumes = {c["shuffle_bytes"] for c in cells.values()}
        if len(volumes) != 1:
            problems.append(f"mode {mode!r}: shuffle bytes differ across backends")
        iters = {c["n_iterations"] for c in cells.values()}
        if len(iters) != 1:
            problems.append(f"mode {mode!r}: iteration counts differ across backends")
    for backend, cell in modes.get("aggregation", {}).items():
        preagg = cell.get("preagg") or {}
        if preagg.get("envelopes", 0) <= 0:
            problems.append(f"aggregation/{backend}: no pre-agg envelopes recorded")
        elif preagg.get("raw_records", 0) <= preagg.get("envelopes", 0):
            problems.append(
                f"aggregation/{backend}: pre-agg folded "
                f"{preagg.get('raw_records')} raw records into "
                f"{preagg.get('envelopes')} envelopes (no compression)"
            )
        if preagg.get("cross_node_bytes", 0) > cell.get("shuffle_bytes", 0):
            problems.append(
                f"aggregation/{backend}: cross-node bytes exceed total shuffle bytes"
            )
    if not modes:
        problems.append("no mode cells in document")
    return problems


def check_shuffle_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
) -> list[str]:
    """Drift of the deterministic shuffle sections versus a baseline.

    Shuffle-byte totals, pre-agg accounting, centroid digests and
    simulated seconds are pure functions of the workload parameters and
    must match exactly; wall-clock columns are host-dependent and
    ignored (cpu_count provenance is reported when a mismatch is found).
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    if baseline.get("workload") != current.get("workload"):
        problems.append("workload mismatch: run with the baseline's parameters")
        return problems
    if current.get("shuffle_bytes") != baseline.get("shuffle_bytes"):
        problems.append(
            f"shuffle_bytes section drifted: {current.get('shuffle_bytes')} "
            f"vs baseline {baseline.get('shuffle_bytes')}"
        )
    cur_modes, base_modes = current.get("modes", {}), baseline.get("modes", {})
    for mode in sorted(set(cur_modes) & set(base_modes)):
        for backend in sorted(set(cur_modes[mode]) & set(base_modes[mode])):
            now, then = cur_modes[mode][backend], base_modes[mode][backend]
            for key in (
                "shuffle_bytes",
                "n_iterations",
                "centroids_sha256",
                "sim_seconds",
                "preagg",
            ):
                if now.get(key) != then.get(key):
                    problems.append(
                        f"{mode}/{backend}: {key} {now.get(key)!r} vs "
                        f"baseline {then.get(key)!r}"
                    )
    if not set(cur_modes) & set(base_modes):
        problems.append("no overlapping modes between run and baseline")
    if problems:
        problems.insert(
            0,
            f"provenance: baseline recorded on cpu_count="
            f"{baseline.get('cpu_count')}, this run on cpu_count="
            f"{current.get('cpu_count')} (deterministic sections compared "
            "exactly; wall-clock ignored)",
        )
    return problems


def render_shuffle_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one shuffle benchmark document."""
    w = doc["workload"]
    sb = doc["shuffle_bytes"]
    lines = [
        f"shuffle-byte minimization (k-means, {w['n_traces']:,} traces, "
        f"k={w['k']}, {w['max_iter']} iterations; cpu_count={doc['cpu_count']}, "
        f"best of {doc['reps']})",
        "",
        f"{'mode':>12}  {'backend':>10}  {'shuffle':>12}  {'cross-node':>11}  "
        f"{'sim':>9}  {'wall':>8}",
    ]
    for mode in ("combiner", "aggregation"):
        for backend in doc["backends"]:
            cell = doc["modes"][mode][backend]
            cross = (
                f"{cell['preagg']['cross_node_bytes']:>10,}B"
                if cell.get("preagg")
                else f"{'-':>11}"
            )
            lines.append(
                f"{mode:>12}  {backend:>10}  {cell['shuffle_bytes']:>11,}B  "
                f"{cross}  {cell['sim_seconds']:>8.1f}s  {cell['wall_s']:>7.2f}s"
            )
    agg = doc["modes"]["aggregation"][doc["backends"][0]]
    lines += [
        "",
        f"shuffle bytes: combiner {sb['combiner']:,} B -> aggregation "
        f"{sb['aggregation']:,} B ({sb['ratio']:.1f}x fewer; "
        f"{sb['cross_node_bytes']:,} B actually crossed nodes)",
        f"pre-agg: {agg['preagg']['raw_records']:,} raw records folded into "
        f"{agg['preagg']['envelopes']:,} envelopes",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Linkage attack benchmark (repro bench --attack).
# ---------------------------------------------------------------------------


def _attack_cell(
    training: TraceArray,
    target: TraceArray,
    truth: dict[str, str],
    backend: str,
    *,
    chunk_mb: int,
    max_workers: int | None,
    budget_mb: float | None = None,
    chaos_seed: int | None = None,
) -> dict[str, Any]:
    """One timed MapReduce linkage attack on a fresh deployment.

    ``budget_mb`` forces the paged/spill path; ``chaos_seed`` runs the
    attack under the chaos campaign's :func:`default fault schedule
    <repro.mapreduce.chaos.default_schedule>`.  Everything but ``wall_s``
    is a deterministic function of the inputs (and, for the chaos cell,
    the seed).
    """
    from repro.attacks.linkage_mr import SYNTH_ATTACK_PARAMS, run_linkage_attack
    from repro.mapreduce.chaos import default_schedule

    hdfs = SimulatedHDFS(
        paper_cluster(4),
        chunk_size=chunk_mb * MB,
        seed=0,
        memory_budget_mb=budget_mb,
    )
    hdfs.put_trace_array("input/train", training, record_bytes=64)
    hdfs.put_trace_array("input/target", target, record_bytes=64)
    workers = None if backend == "serial" else max_workers
    chaos = default_schedule(chaos_seed) if chaos_seed is not None else None
    with JobRunner(
        hdfs,
        executor=backend,
        max_workers=workers,
        chaos=chaos,
        memory_budget_mb=budget_mb,
    ) as runner:
        start = time.perf_counter()
        outcome = run_linkage_attack(
            runner,
            "input/train",
            "input/target",
            truth,
            params=SYNTH_ATTACK_PARAMS,
        )
        elapsed = time.perf_counter() - start
    linked = sum(1 for v in outcome.result.linkage.values() if v is not None)
    return {
        "wall_s": elapsed,
        "sim_seconds": round(float(outcome.sim_seconds), 6),
        "signature": outcome.signature(),
        "success_rate": round(float(outcome.result.success_rate), 9),
        "linked": int(linked),
        "n_targets": int(outcome.result.n_targets),
        "pairs_scored": int(outcome.pairs_scored),
        "pairs_exact": (
            None if outcome.pairs_exact is None else int(outcome.pairs_exact)
        ),
        "cross_product": int(outcome.cross_product),
        "blocking_exact": outcome.blocking_exact,
    }


def run_attack_benchmark(
    n_users: int = 100_000,
    backends: Sequence[str] = BACKENDS,
    *,
    equivalence_users: int = 40,
    chunk_mb: int = 2,
    max_workers: int | None = None,
    seed: int = 0,
    budget_mb: float = 8.0,
    chaos_seed: int = 7,
    reps: int = 1,
) -> dict[str, Any]:
    """The MapReduce linkage attack: exactness matrix + 10^5-user scale.

    Two blocks.  The *equivalence* block runs a small
    :func:`~repro.attacks.linkage_mr.synthetic_linkage_corpus` through
    the tie-break-fixed serial reference attack, then through the
    MapReduce attack on every backend, under a ``budget_mb`` memory
    budget, and under a fixed chaos schedule — every cell must reproduce
    the reference signature byte for byte (divergence raises before a
    document is even produced).  The *scale* block times the attack at
    ``n_users`` training users vs ``n_users`` pseudonymized targets
    (10^10 candidate pairs) on the serial backend, best of ``reps``,
    with the persistent-index audit proving the candidate blocking
    lossless.
    """
    from repro.attacks.linkage_mr import (
        SYNTH_ATTACK_PARAMS,
        deanonymization_attack_reference,
        linkage_signature,
        synthetic_linkage_corpus,
    )

    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {list(BACKENDS)}")
    if reps < 1:
        raise ValueError("reps must be >= 1")

    small_train, small_target, small_truth = synthetic_linkage_corpus(
        int(equivalence_users), seed=seed
    )
    reference = deanonymization_attack_reference(
        small_train, small_target, small_truth, params=SYNTH_ATTACK_PARAMS
    )
    reference_signature = linkage_signature(reference)
    equivalence: dict[str, dict[str, Any]] = {}
    for backend in backends:
        equivalence[backend] = _attack_cell(
            small_train,
            small_target,
            small_truth,
            backend,
            chunk_mb=chunk_mb,
            max_workers=max_workers,
        )
    equivalence["serial+budget"] = _attack_cell(
        small_train,
        small_target,
        small_truth,
        "serial",
        chunk_mb=chunk_mb,
        max_workers=max_workers,
        budget_mb=budget_mb,
    )
    equivalence["serial+chaos"] = _attack_cell(
        small_train,
        small_target,
        small_truth,
        "serial",
        chunk_mb=chunk_mb,
        max_workers=max_workers,
        chaos_seed=chaos_seed,
    )
    for label, cell in equivalence.items():
        if cell["signature"] != reference_signature:
            raise RuntimeError(
                f"equivalence cell {label!r} diverged from the serial "
                "reference attack: signatures differ"
            )

    train, target, truth = synthetic_linkage_corpus(int(n_users), seed=seed)
    scale: dict[str, Any] | None = None
    for _ in range(reps):
        cell = _attack_cell(
            train,
            target,
            truth,
            "serial",
            chunk_mb=chunk_mb,
            max_workers=max_workers,
        )
        if scale is None or cell["wall_s"] < scale["wall_s"]:
            scale = cell
    return {
        "schema": _ATTACK_SCHEMA,
        "workload": {
            "driver": "linkage",
            "n_users": int(n_users),
            "equivalence_users": int(equivalence_users),
            "radius_m": float(SYNTH_ATTACK_PARAMS.radius_m),
            "min_pts": int(SYNTH_ATTACK_PARAMS.min_pts),
            "chunk_mb": int(chunk_mb),
            "cluster_workers": 4,
            "seed": int(seed),
            "budget_mb": float(budget_mb),
            "chaos_seed": int(chaos_seed),
        },
        "cpu_count": os.cpu_count(),
        "max_workers": max_workers,
        "reps": int(reps),
        "backends": list(backends),
        "reference_signature": reference_signature,
        "equivalence": equivalence,
        "scale": scale,
    }


def check_attack_result(
    doc: Mapping[str, Any], min_success: float = 0.9, min_blocking_ratio: float = 100.0
) -> list[str]:
    """Intrinsic gates on one attack document (no baseline needed).

    * every equivalence cell (backends, memory budget, chaos) reproduced
      the serial reference signature byte for byte;
    * every non-chaos cell's persistent-index audit proved the candidate
      blocking lossless (``pairs_scored == pairs_exact``);
    * the scale attack actually de-anonymizes: success rate at least
      ``min_success`` with at least one link;
    * the blocking actually blocks: the scale cell scored at least
      ``min_blocking_ratio`` x fewer pairs than the serial cross
      product.
    """
    problems: list[str] = []
    reference = doc.get("reference_signature")
    equivalence = doc.get("equivalence", {})
    if not equivalence:
        problems.append("no equivalence cells in document")
    for label, cell in equivalence.items():
        if cell.get("signature") != reference:
            problems.append(
                f"equivalence/{label}: signature differs from the serial reference"
            )
        if label != "serial+chaos" and cell.get("blocking_exact") is not True:
            problems.append(
                f"equivalence/{label}: blocking audit not exact "
                f"(pairs_scored={cell.get('pairs_scored')}, "
                f"pairs_exact={cell.get('pairs_exact')})"
            )
    scale = doc.get("scale") or {}
    if not scale:
        problems.append("no scale cell in document")
        return problems
    if scale.get("blocking_exact") is not True:
        problems.append(
            f"scale: blocking audit not exact (pairs_scored="
            f"{scale.get('pairs_scored')}, pairs_exact={scale.get('pairs_exact')})"
        )
    if scale.get("linked", 0) <= 0:
        problems.append("scale: attack linked nothing")
    if float(scale.get("success_rate", 0.0)) < min_success:
        problems.append(
            f"scale: success rate {scale.get('success_rate')} is below "
            f"the {min_success:g} floor"
        )
    scored = int(scale.get("pairs_scored", 0))
    cross = int(scale.get("cross_product", 0))
    if scored <= 0 or scored * min_blocking_ratio > cross:
        problems.append(
            f"scale: blocking scored {scored:,} of {cross:,} pairs — "
            f"less than {min_blocking_ratio:g}x reduction"
        )
    return problems


def check_attack_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
) -> list[str]:
    """Drift of the deterministic attack sections versus a baseline.

    Signatures, counters, success rates and simulated seconds are pure
    functions of the workload parameters (the chaos cell's additionally
    of the fixed schedule seed) and must match exactly; wall-clock
    columns are host-dependent and ignored.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    if baseline.get("workload") != current.get("workload"):
        problems.append("workload mismatch: run with the baseline's parameters")
        return problems
    if current.get("reference_signature") != baseline.get("reference_signature"):
        problems.append(
            f"reference signature drifted: {current.get('reference_signature')!r} "
            f"vs baseline {baseline.get('reference_signature')!r}"
        )
    deterministic = (
        "signature",
        "sim_seconds",
        "success_rate",
        "linked",
        "n_targets",
        "pairs_scored",
        "pairs_exact",
        "cross_product",
        "blocking_exact",
    )
    cur_cells = dict(current.get("equivalence", {}))
    base_cells = dict(baseline.get("equivalence", {}))
    if current.get("scale"):
        cur_cells["scale"] = current["scale"]
    if baseline.get("scale"):
        base_cells["scale"] = baseline["scale"]
    for label in sorted(set(cur_cells) & set(base_cells)):
        now, then = cur_cells[label], base_cells[label]
        for key in deterministic:
            if now.get(key) != then.get(key):
                problems.append(
                    f"{label}: {key} {now.get(key)!r} vs baseline {then.get(key)!r}"
                )
    if not set(cur_cells) & set(base_cells):
        problems.append("no overlapping cells between run and baseline")
    if problems:
        problems.insert(
            0,
            f"provenance: baseline recorded on cpu_count="
            f"{baseline.get('cpu_count')}, this run on cpu_count="
            f"{current.get('cpu_count')} (deterministic sections compared "
            "exactly; wall-clock ignored)",
        )
    return problems


def render_attack_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one attack benchmark document."""
    w = doc["workload"]
    lines = [
        f"linkage attack ({w['n_users']:,} users vs {w['n_users']:,} pseudonyms; "
        f"equivalence on {w['equivalence_users']} users; "
        f"cpu_count={doc['cpu_count']}, best of {doc['reps']})",
        "",
        f"{'cell':>14}  {'success':>8}  {'linked':>7}  {'pairs':>10}  "
        f"{'exact':>5}  {'sim':>9}  {'wall':>8}",
    ]
    cells = dict(doc.get("equivalence", {}))
    if doc.get("scale"):
        cells["scale"] = doc["scale"]
    for label, cell in cells.items():
        exact = {True: "yes", False: "NO", None: "-"}[cell.get("blocking_exact")]
        lines.append(
            f"{label:>14}  {cell['success_rate']:>8.2%}  {cell['linked']:>7,}  "
            f"{cell['pairs_scored']:>10,}  {exact:>5}  "
            f"{cell['sim_seconds']:>8.1f}s  {cell['wall_s']:>7.2f}s"
        )
    scale = doc.get("scale") or {}
    if scale:
        lines += [
            "",
            f"blocking: {scale['pairs_scored']:,} pairs scored of "
            f"{scale['cross_product']:,} serial cross product "
            f"({scale['cross_product'] / max(scale['pairs_scored'], 1):,.0f}x fewer)",
            f"all {len(doc.get('equivalence', {}))} equivalence cells match the "
            f"serial reference signature {doc['reference_signature'][:16]}…",
        ]
    return "\n".join(lines)
