"""Wall-clock benchmarking of the execution backends (``repro bench``).

The simulator's cost model answers "what would this cost on the paper's
cluster?"; this module answers the orthogonal question "what does it
cost *here*, on real silicon?" by timing the same fixed-initial-centroid
k-means driver on every execution backend over synthetic corpora of
10^5–10^6 traces.

The workload is chosen to exercise exactly what the backends differ in:
multiple chunks (so there is parallelism to find), an iterative driver
(so the process backend's per-chunk shared-memory segments are reused
across jobs), a distributed-cache entry updated every iteration (so the
broadcast path is hot), and a combiner (so the shuffle stays small and
the timing isolates map-side compute + transport).

Results serialize to a small JSON document (see :func:`run_backend_benchmark`)
that doubles as a regression baseline: :func:`check_against_baseline`
compares a fresh run against a committed ``BENCH_backends.json`` and
flags slowdowns beyond a tolerance.  Absolute times are only comparable
on matching hardware, so the check compares raw seconds when the CPU
count matches the baseline's and falls back to serial-normalized ratios
(which cancel single-core speed) when it does not.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.hdfs import MB, SimulatedHDFS
from repro.mapreduce.runner import JobRunner

__all__ = [
    "synthetic_corpus",
    "run_backend_benchmark",
    "check_against_baseline",
    "render_result",
    "DEFAULT_SIZES",
    "DEFAULT_BASELINE",
]

#: Corpus sizes the trajectory is measured over (traces).
DEFAULT_SIZES = (100_000, 1_000_000)

#: Committed baseline the ``--check`` mode compares against.
DEFAULT_BASELINE = Path("benchmarks") / "BENCH_backends.json"

_SCHEMA = 1


def synthetic_corpus(n_traces: int, seed: int = 0, n_clusters: int = 8) -> TraceArray:
    """A clustered corpus of ``n_traces`` synthetic mobility traces.

    Gaussian blobs around ``n_clusters`` centers in the Beijing bounding
    box — structured enough that k-means does real work, generated in
    O(n) NumPy time so corpus construction never dominates the benchmark.
    """
    rng = np.random.default_rng(seed)
    centers = np.column_stack(
        (rng.uniform(39.6, 40.3, n_clusters), rng.uniform(116.0, 116.8, n_clusters))
    )
    which = rng.integers(0, n_clusters, n_traces)
    lat = centers[which, 0] + rng.normal(0.0, 0.03, n_traces)
    lon = centers[which, 1] + rng.normal(0.0, 0.03, n_traces)
    timestamp = np.arange(n_traces, dtype=np.float64)
    return TraceArray.from_columns(["bench"], lat, lon, timestamp)


def _time_one_run(
    corpus: TraceArray,
    backend: str,
    *,
    k: int,
    max_iter: int,
    chunk_mb: int,
    max_workers: int | None,
):
    """One timed k-means run on a fresh deployment; returns (seconds, result)."""
    from repro.algorithms.kmeans import run_kmeans_mapreduce

    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=chunk_mb * MB, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    init = corpus.coordinates()[:k].copy()
    workers = None if backend == "serial" else max_workers
    with JobRunner(hdfs, executor=backend, max_workers=workers) as runner:
        start = time.perf_counter()
        result = run_kmeans_mapreduce(
            runner,
            "input/traces",
            k=k,
            max_iter=max_iter,
            initial_centroids=init,
            use_combiner=True,
            workdir="tmp/kmeans",
        )
        elapsed = time.perf_counter() - start
    return elapsed, result


def run_backend_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    backends: Sequence[str] = BACKENDS,
    iterations: int = 2,
    *,
    k: int = 4,
    max_iter: int = 3,
    # 2 MB chunks @ 64 modelled bytes/trace: ~4 map tasks at 10^5 traces,
    # ~31 at 10^6 — enough fan-out for the pools to matter at both sizes.
    chunk_mb: int = 2,
    max_workers: int | None = None,
    seed: int = 0,
) -> dict[str, Any]:
    """Time the k-means driver on every backend at every corpus size.

    Each (size, backend) cell is run ``iterations`` times on a fresh
    simulated deployment and the *best* wall-clock is kept (minimum is
    the standard noise-robust estimator for repeated timings).  Before
    any timing is trusted, the run verifies every backend produced
    byte-identical centroids and the same iteration count as serial —
    a benchmark of diverging computations would be meaningless.
    """
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {list(BACKENDS)}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    results = []
    for size in sizes:
        corpus = synthetic_corpus(int(size), seed=seed)
        times: dict[str, float] = {}
        reference = None
        for backend in backends:
            best = None
            for _ in range(iterations):
                elapsed, result = _time_one_run(
                    corpus,
                    backend,
                    k=k,
                    max_iter=max_iter,
                    chunk_mb=chunk_mb,
                    max_workers=max_workers,
                )
                best = elapsed if best is None else min(best, elapsed)
            if reference is None:
                reference = result
            else:
                if not np.array_equal(result.centroids, reference.centroids):
                    raise RuntimeError(
                        f"backend {backend!r} diverged from {backends[0]!r} "
                        f"at size {size}: centroids differ"
                    )
                if result.n_iterations != reference.n_iterations:
                    raise RuntimeError(
                        f"backend {backend!r} diverged from {backends[0]!r} "
                        f"at size {size}: {result.n_iterations} != "
                        f"{reference.n_iterations} iterations"
                    )
            times[backend] = best
        entry: dict[str, Any] = {"size": int(size), "times_s": times}
        if "serial" in times:
            entry["speedup_vs_serial"] = {
                b: times["serial"] / t for b, t in times.items() if b != "serial"
            }
        results.append(entry)
    return {
        "schema": _SCHEMA,
        "workload": {
            "driver": "kmeans",
            "k": k,
            "max_iter": max_iter,
            "chunk_mb": chunk_mb,
            "combiner": True,
            "seed": seed,
        },
        "cpu_count": os.cpu_count(),
        "max_workers": max_workers,
        "iterations": iterations,
        "backends": list(backends),
        "results": results,
    }


def _times_by_size(doc: Mapping[str, Any]) -> dict[int, dict[str, float]]:
    return {int(e["size"]): dict(e["times_s"]) for e in doc.get("results", [])}


def check_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.25,
    min_seconds: float = 0.25,
) -> list[str]:
    """Regressions of ``current`` versus a committed ``baseline``.

    Returns a list of human-readable problems; empty means the run is
    within ``tolerance`` (fractional slowdown, default 25%) everywhere
    the two documents overlap.  When the CPU counts match, raw seconds
    are compared; otherwise each backend's time is normalized by the
    same run's serial time first, so a faster or slower host doesn't
    mask (or fake) a regression in the parallel machinery itself.

    Cells whose baseline wall-clock is under ``min_seconds`` are
    skipped: at tens of milliseconds, scheduler jitter alone exceeds any
    plausible tolerance, and a guard that cries wolf gets deleted.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    same_host = baseline.get("cpu_count") == current.get("cpu_count")
    cur, base = _times_by_size(current), _times_by_size(baseline)
    for size in sorted(set(cur) & set(base)):
        for backend in sorted(set(cur[size]) & set(base[size])):
            if base[size][backend] < min_seconds:
                continue
            if same_host:
                now, then = cur[size][backend], base[size][backend]
                metric = "wall-clock"
            else:
                if "serial" not in cur[size] or "serial" not in base[size]:
                    continue
                if backend == "serial":
                    continue
                now = cur[size][backend] / cur[size]["serial"]
                then = base[size][backend] / base[size]["serial"]
                metric = "serial-normalized time"
            if now > then * (1.0 + tolerance):
                problems.append(
                    f"{backend} @ {size:,} traces: {metric} regressed "
                    f"{now:.3f} vs baseline {then:.3f} "
                    f"(+{(now / then - 1.0) * 100:.0f}%, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
    if not set(cur) & set(base):
        problems.append("no overlapping corpus sizes between run and baseline")
    return problems


def render_result(doc: Mapping[str, Any]) -> str:
    """Terminal table for one benchmark document."""
    lines = [
        f"execution-backend wall-clock (k-means, k={doc['workload']['k']}, "
        f"{doc['workload']['max_iter']} iterations, combiner on; "
        f"cpu_count={doc['cpu_count']}, best of {doc['iterations']})",
        "",
        f"{'traces':>12}  " + "".join(f"{b:>12}" for b in doc["backends"]),
    ]
    for entry in doc["results"]:
        row = f"{entry['size']:>12,}  "
        row += "".join(f"{entry['times_s'][b]:>11.3f}s" for b in doc["backends"])
        lines.append(row)
        speedups = entry.get("speedup_vs_serial")
        if speedups:
            row = f"{'vs serial':>12}  " + f"{'1.00x':>12}"
            row += "".join(
                f"{speedups[b]:>11.2f}x" for b in doc["backends"] if b != "serial"
            )
            lines.append(row)
    return "\n".join(lines)


def save_result(doc: Mapping[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_result(path: str | Path) -> dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)
