"""Data-plane types: chunk payloads and size accounting.

HDFS files are sequences of :class:`Chunk` objects.  A chunk carries an
opaque payload plus the record/byte counts the scheduler and cost model
need.  Two payload kinds cover everything the toolkit does:

* :class:`RecordPayload` — a list of ``(key, value)`` pairs, the classic
  Hadoop record-at-a-time representation (used by tests, text inputs and
  small intermediate datasets).
* :class:`ArrayPayload` — a columnar :class:`~repro.geo.trace.TraceArray`
  slice.  Map *tasks* in Hadoop process a whole chunk anyway; vectorized
  mappers exploit that by operating on the chunk's array in one NumPy pass
  instead of a Python loop over millions of records (the HPC guides'
  "vectorize the hot loop" rule).  ``records()`` still yields per-record
  pairs so record-oriented mappers work on either payload.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.geo.trace import TraceArray

__all__ = [
    "estimate_nbytes",
    "RecordPayload",
    "ArrayPayload",
    "PagedPayload",
    "concrete_payload",
    "Chunk",
    "record_stream",
    "DEFAULT_RECORD_BYTES",
]

#: Modelled on-disk size of one GeoLife text record.  The paper's 128 MB
#: dataset holds 2,033,686 traces — 63 bytes per trace — so 64 bytes is the
#: faithful conversion between trace counts and HDFS bytes.
DEFAULT_RECORD_BYTES = 64


def estimate_nbytes(value: Any) -> int:
    """Best-effort serialized size of a record value.

    NumPy arrays report their buffer size; everything else pays one pickle.
    Used for shuffle-byte accounting, never on the per-trace hot path
    (vectorized mappers pass explicit sizes to ``emit``).
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, TraceArray):
        # Actual columnar footprint (packed rows + user side table), not a
        # flat per-record guess: a TraceArray crossing the shuffle moves
        # its 36-byte packed rows, and pricing them at DEFAULT_RECORD_BYTES
        # (the *text* record size) overstated transfer by ~78%.
        return value.data_nbytes + sum(
            len(u.encode("utf-8", errors="replace")) for u in value.users
        )
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(value)


@dataclass
class RecordPayload:
    """A chunk payload holding explicit ``(key, value)`` records."""

    records: list[tuple[Any, Any]]

    @property
    def n_records(self) -> int:
        return len(self.records)

    def nbytes(self) -> int:
        return sum(estimate_nbytes(k) + estimate_nbytes(v) for k, v in self.records)

    def iter_records(self) -> Iterator[tuple[Any, Any]]:
        return iter(self.records)


@dataclass
class ArrayPayload:
    """A chunk payload holding a columnar slice of mobility traces.

    ``record_bytes`` is the modelled per-trace on-disk size used when this
    payload was chunked (so byte accounting matches the chunking decision).
    ``offset`` is the global row index of this slice's first trace within
    its file, letting vectorized mappers derive stable per-record ids
    (``offset + arange(n)``) without materializing per-record keys.
    """

    array: TraceArray
    record_bytes: int = DEFAULT_RECORD_BYTES
    offset: int = 0

    @property
    def n_records(self) -> int:
        return len(self.array)

    def nbytes(self) -> int:
        return len(self.array) * self.record_bytes

    def iter_records(self) -> Iterator[tuple[Any, Any]]:
        """Record view: key = global row offset, value = MobilityTrace."""
        for i, trace in enumerate(self.array):
            yield self.offset + i, trace


@dataclass
class PagedPayload:
    """A payload stub whose contents live in a budgeted store until read.

    Under ``mapreduce.memory_budget_mb`` the namenode keeps chunk
    payloads in a :class:`~repro.mapreduce.spill.PayloadStore` that pages
    them to disk LRU-style; chunks then carry this stub instead of the
    data.  The stub answers every *metadata* question (record count,
    modelled bytes) from hints captured at write time — so scheduling and
    cost modelling never touch disk — and forwards *data* access through
    ``load`` (which rehydrates and re-pins the payload in the store).
    Holders of the stub must not cache the loaded payload beyond one
    task's processing, or the budget stops meaning anything.
    """

    load: Callable[[], "RecordPayload | ArrayPayload"]
    kind: str  # "records" or "array"
    n_records_hint: int
    nbytes_hint: int
    record_bytes: int = 0
    offset: int = 0

    @property
    def n_records(self) -> int:
        return self.n_records_hint

    def nbytes(self) -> int:
        return self.nbytes_hint

    def iter_records(self) -> Iterator[tuple[Any, Any]]:
        return self.load().iter_records()

    def materialize(self) -> "RecordPayload | ArrayPayload":
        """The concrete payload (rehydrated from disk if paged out)."""
        return self.load()


def concrete_payload(
    payload: "RecordPayload | ArrayPayload | PagedPayload",
) -> "RecordPayload | ArrayPayload":
    """``payload`` with any paging indirection removed."""
    if isinstance(payload, PagedPayload):
        return payload.materialize()
    return payload


@dataclass
class Chunk:
    """One HDFS chunk: payload plus the metadata the control plane needs.

    ``replicas`` is the ordered list of datanode names holding a copy (the
    first entry is the "primary", written locally per the rack-aware
    policy); it is filled in by the namenode at write time.
    """

    chunk_id: str
    payload: RecordPayload | ArrayPayload | PagedPayload
    replicas: tuple[str, ...] = ()

    @property
    def n_records(self) -> int:
        return self.payload.n_records

    @property
    def nbytes(self) -> int:
        return self.payload.nbytes()

    def records(self) -> Iterator[tuple[Any, Any]]:
        return self.payload.iter_records()

    def trace_array(self) -> TraceArray:
        """The chunk's traces as a columnar array (vectorized-mapper path).

        Record payloads whose values are :class:`MobilityTrace` objects are
        converted; anything else raises ``TypeError``.
        """
        payload = concrete_payload(self.payload)
        if isinstance(payload, ArrayPayload):
            return payload.array
        from repro.geo.trace import MobilityTrace

        values = [v for _, v in payload.records]
        if not all(isinstance(v, MobilityTrace) for v in values):
            raise TypeError(f"chunk {self.chunk_id} does not hold traces")
        return TraceArray.from_traces(values)


def record_stream(chunks: Iterable[Chunk]) -> Iterator[tuple[Any, Any]]:
    """Flatten an iterable of chunks into one record stream."""
    for chunk in chunks:
        yield from chunk.records()
