"""Failure injection: the deterministic chaos engine of the substrate.

Hadoop's jobtracker monitors tasks and re-executes failed attempts (up to
``mapred.map.max.attempts``, default 4), preferring a different node that
holds a replica of the input chunk.  This module provides the injection
half in two tiers:

* :class:`FailureInjector` — the original scripted/probabilistic
  task-crash injector the unit tests and ablation benches use;
* :class:`ChaosSchedule` — a seeded, *counter-hashed* chaos schedule
  covering the full fault taxonomy of a real deployment
  (:class:`FaultKind`): task-attempt crashes, slow-node stragglers,
  mid-phase node loss (tasktracker + its datanode), shuffle-fetch
  failures, and distributed-cache load errors.

Determinism model (docs/CHAOS.md): every ChaosSchedule decision is a pure
hash of ``(seed, fault kind, stable identifiers)`` through the same
splitmix64 pipeline as :mod:`repro.utils.hashrng` — never a sequential
RNG draw.  Whether ``map-0003``'s second attempt crashes does not depend
on how many other faults fired before it, so a schedule is reproducible
event-for-event under the same seed and is unperturbed by executor
interleaving ("threads" vs "serial").

The runner's retry loop catches :class:`TaskFailure` (and its subclass
:class:`CacheLoadFailure`); a task exhausting its attempt budget raises
:class:`JobFailedError` carrying the full failure chain.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.hashrng import hash_uniform

__all__ = [
    "TaskFailure",
    "CacheLoadFailure",
    "JobFailedError",
    "FaultKind",
    "Fault",
    "ChaosSchedule",
    "FailureInjector",
    "MAX_TASK_ATTEMPTS",
    "emit_attempt_failures",
]

#: Hadoop's default maximum attempts per task before the job fails.
MAX_TASK_ATTEMPTS = 4

#: FNV-1a 64-bit offset basis / prime (the token-string hash feeding
#: splitmix64; any good 64-bit string hash would do, FNV is dependency-free).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = 0xFFFFFFFFFFFFFFFF


class FaultKind:
    """The closed fault taxonomy a :class:`ChaosSchedule` can inject."""

    TASK_CRASH = "task_crash"
    SLOW_NODE = "slow_node"
    NODE_LOSS = "node_loss"
    SHUFFLE_FETCH = "shuffle_fetch"
    CACHE_LOAD = "cache_load"
    #: A feed's micro-batch arrives after its window's watermark and is
    #: delivered during the next window (streaming layer).
    LATE_BATCH = "late_batch"
    #: A feed's micro-batch never arrives: its points are dropped and
    #: counted, no retry (streaming layer).
    LOST_BATCH = "lost_batch"
    #: A feed's micro-batch is delivered twice; the batcher deduplicates
    #: by (feed, window) sequence id so outputs are unchanged.
    DUP_BATCH = "dup_batch"

    ALL = (
        TASK_CRASH,
        SLOW_NODE,
        NODE_LOSS,
        SHUFFLE_FETCH,
        CACHE_LOAD,
        LATE_BATCH,
        LOST_BATCH,
        DUP_BATCH,
    )


class TaskFailure(RuntimeError):
    """Raised inside a task attempt to simulate a crash."""

    def __init__(
        self,
        task_id: str,
        attempt: int,
        reason: str = "injected failure",
        kind: str = FaultKind.TASK_CRASH,
    ):
        super().__init__(f"task {task_id} attempt {attempt}: {reason}")
        self.task_id = task_id
        self.attempt = attempt
        self.reason = reason
        self.kind = kind


class CacheLoadFailure(TaskFailure):
    """A task attempt could not localize the distributed cache."""

    def __init__(self, task_id: str, attempt: int, entry: str | None = None):
        what = f" ({entry!r})" if entry else ""
        super().__init__(
            task_id,
            attempt,
            reason=f"distributed cache load error{what}",
            kind=FaultKind.CACHE_LOAD,
        )
        self.entry = entry


class JobFailedError(RuntimeError):
    """A task exhausted its retry budget and took the job down.

    Subclasses ``RuntimeError`` (the exception contract the runner always
    had) and carries the machine-readable failure chain so tests and the
    chaos report can show *why* the job failed, attempt by attempt.
    """

    def __init__(
        self,
        task_id: str,
        max_attempts: int,
        failures: Sequence[tuple] = (),
    ):
        chain = "; ".join(
            f"attempt {f[0]} on {f[1]}: {f[2]}" for f in failures
        )
        message = f"task {task_id} failed {max_attempts} attempts"
        if chain:
            message += f" [{chain}]"
        super().__init__(message)
        self.task_id = task_id
        self.max_attempts = max_attempts
        #: ``(attempt, node, reason[, fault kind])`` per failed attempt.
        self.failures = [tuple(f) for f in failures]

    @property
    def failure_chain(self) -> list[str]:
        return [f"attempt {f[0]} on {f[1]}: {f[2]}" for f in self.failures]


@dataclass(frozen=True)
class Fault:
    """One scripted fault in a :class:`ChaosSchedule`.

    ``task``/``node``/``job``/``attempt`` scope the fault to its target:
    task-scoped kinds (crash, cache load, shuffle fetch) match on
    ``(task, attempt)``; ``slow_node`` matches on ``node``; ``node_loss``
    matches on ``node`` and optionally restricts to one ``job`` name
    (``job=None`` = the first job where the node is still alive).  Feed
    kinds (late/lost/dup batch) match on ``(feed, window)``; leaving
    ``feed`` or ``window`` at ``None`` matches every feed or window.
    """

    kind: str
    task: str | None = None
    node: str | None = None
    attempt: int = 1
    job: str | None = None
    feed: str | None = None
    window: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FaultKind.ALL}"
            )


def _hash_u01(seed: int, *tokens) -> float:
    """Uniform (0, 1) draw from a seed and stable identifier tokens.

    FNV-1a over the token string feeds the splitmix64 pipeline of
    :func:`repro.utils.hashrng.hash_uniform` — a counter-based draw whose
    value depends only on its inputs, never on draw order.
    """
    text = "\x1f".join(str(t) for t in (seed, *tokens))
    h = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _U64
    return float(hash_uniform(np.array([h], dtype=np.uint64))[0])


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, deterministic schedule of infrastructure faults.

    Probabilistic knobs (``*_prob``) and explicit :class:`Fault` scripts
    compose; every probabilistic decision hashes
    ``(seed, kind, target ids)``, so two runs with the same seed inject
    the *same* faults at the same points — the bit-reproducibility the
    equivalence-under-failure suite pins down.  Because decisions key on
    task/node identifiers rather than draw counters, a schedule is also
    insensitive to executor interleaving.

    ``bad_nodes`` models chronically failing hardware (bad disk): every
    attempt dispatched to such a node crashes, which is the scenario the
    scheduler's per-node blacklist exists for.
    """

    seed: int = 0
    crash_prob: float = 0.0
    cache_load_prob: float = 0.0
    shuffle_fetch_prob: float = 0.0
    slow_node_prob: float = 0.0
    slow_factor: float = 3.0
    node_loss_prob: float = 0.0
    max_node_losses: int = 1
    late_batch_prob: float = 0.0
    lost_batch_prob: float = 0.0
    dup_batch_prob: float = 0.0
    bad_nodes: frozenset[str] = frozenset()
    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("crash_prob", "cache_load_prob", "shuffle_fetch_prob",
                     "slow_node_prob", "node_loss_prob",
                     "late_batch_prob", "lost_batch_prob", "dup_batch_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {p}")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        # Normalize collection types so schedules hash/compare cleanly.
        object.__setattr__(self, "bad_nodes", frozenset(self.bad_nodes))
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- task crashes -------------------------------------------------------
    def fail_attempt(self, task_id: str, attempt: int, node: str | None = None) -> None:
        """Raise :class:`TaskFailure` if this attempt is doomed to crash."""
        for fault in self.faults:
            if (
                fault.kind == FaultKind.TASK_CRASH
                and fault.task == task_id
                and fault.attempt == attempt
            ):
                raise TaskFailure(task_id, attempt, "scripted chaos crash")
        if node is not None and node in self.bad_nodes:
            raise TaskFailure(task_id, attempt, f"bad node {node}")
        if self.crash_prob > 0.0:
            if _hash_u01(self.seed, FaultKind.TASK_CRASH, task_id, attempt) < self.crash_prob:
                raise TaskFailure(task_id, attempt, "chaos crash")

    # -- distributed-cache load errors --------------------------------------
    def cache_load_fails(self, task_id: str, attempt: int) -> bool:
        """Whether this attempt's cache localization fails."""
        for fault in self.faults:
            if (
                fault.kind == FaultKind.CACHE_LOAD
                and fault.task == task_id
                and fault.attempt == attempt
            ):
                return True
        return self.cache_load_prob > 0.0 and (
            _hash_u01(self.seed, FaultKind.CACHE_LOAD, task_id, attempt)
            < self.cache_load_prob
        )

    # -- shuffle-fetch failures ---------------------------------------------
    def shuffle_fetch_failures(self, task_id: str) -> int:
        """Number of failed (and re-fetched) shuffle fetches for a reducer."""
        count = sum(
            1
            for fault in self.faults
            if fault.kind == FaultKind.SHUFFLE_FETCH and fault.task == task_id
        )
        if self.shuffle_fetch_prob > 0.0 and (
            _hash_u01(self.seed, FaultKind.SHUFFLE_FETCH, task_id)
            < self.shuffle_fetch_prob
        ):
            count += 1
        return count

    # -- slow nodes ----------------------------------------------------------
    def node_slowdown(self, node: str) -> float:
        """Duration multiplier for tasks on ``node`` (1.0 = healthy)."""
        for fault in self.faults:
            if fault.kind == FaultKind.SLOW_NODE and fault.node == node:
                return self.slow_factor
        if self.slow_node_prob > 0.0 and (
            _hash_u01(self.seed, FaultKind.SLOW_NODE, node) < self.slow_node_prob
        ):
            return self.slow_factor
        return 1.0

    # -- node loss ------------------------------------------------------------
    def node_loss_victim(
        self, job_name: str, candidates: Sequence[str], losses_so_far: int
    ) -> str | None:
        """Node that dies during ``job_name``'s map phase, if any.

        ``candidates`` are the alive worker nodes eligible to die; the
        runner guards cluster viability (enough survivors + a surviving
        replica per chunk) before calling.  At most ``max_node_losses``
        nodes die per deployment.
        """
        if losses_so_far >= self.max_node_losses or not candidates:
            return None
        ordered = sorted(candidates)
        for fault in self.faults:
            if fault.kind != FaultKind.NODE_LOSS:
                continue
            if fault.job is not None and fault.job != job_name:
                continue
            if fault.node is None:
                return ordered[0]
            if fault.node in ordered:
                return fault.node
        if self.node_loss_prob > 0.0 and (
            _hash_u01(self.seed, FaultKind.NODE_LOSS, job_name) < self.node_loss_prob
        ):
            pick = _hash_u01(self.seed, FaultKind.NODE_LOSS, "victim", job_name)
            return ordered[min(int(pick * len(ordered)), len(ordered) - 1)]
        return None

    # -- feed faults (streaming micro-batches) --------------------------------
    def _batch_fault(self, kind: str, feed: str, window: int) -> bool:
        """Shared scripted + probabilistic decision for one feed batch.

        Keys on ``(seed, kind, feed, window)`` — stable identifiers of the
        batch itself — so the decision is independent of delivery order
        and identical between a streaming run and its batch replay.
        """
        for fault in self.faults:
            if fault.kind != kind:
                continue
            if fault.feed is not None and fault.feed != feed:
                continue
            if fault.window is not None and fault.window != window:
                continue
            return True
        prob = {
            FaultKind.LATE_BATCH: self.late_batch_prob,
            FaultKind.LOST_BATCH: self.lost_batch_prob,
            FaultKind.DUP_BATCH: self.dup_batch_prob,
        }[kind]
        return prob > 0.0 and _hash_u01(self.seed, kind, feed, window) < prob

    def batch_lost(self, feed: str, window: int) -> bool:
        """Whether this feed's batch for ``window`` never arrives."""
        return self._batch_fault(FaultKind.LOST_BATCH, feed, window)

    def batch_late(self, feed: str, window: int) -> bool:
        """Whether this feed's batch misses the watermark and slips into
        the next window's delivery."""
        return self._batch_fault(FaultKind.LATE_BATCH, feed, window)

    def batch_duplicated(self, feed: str, window: int) -> bool:
        """Whether this feed's batch is delivered twice."""
        return self._batch_fault(FaultKind.DUP_BATCH, feed, window)

    # -- introspection ---------------------------------------------------------
    def active(self) -> bool:
        """Whether this schedule can inject anything at all."""
        return bool(
            self.crash_prob
            or self.cache_load_prob
            or self.shuffle_fetch_prob
            or self.slow_node_prob
            or self.node_loss_prob
            or self.late_batch_prob
            or self.lost_batch_prob
            or self.dup_batch_prob
            or self.bad_nodes
            or self.faults
        )

    def describe(self) -> str:
        """One-line knob summary for the chaos report."""
        parts = [f"seed={self.seed}"]
        for label, value in (
            ("crash", self.crash_prob),
            ("cache", self.cache_load_prob),
            ("shuffle", self.shuffle_fetch_prob),
            ("slow", self.slow_node_prob),
            ("node-loss", self.node_loss_prob),
            ("late-batch", self.late_batch_prob),
            ("lost-batch", self.lost_batch_prob),
            ("dup-batch", self.dup_batch_prob),
        ):
            if value:
                parts.append(f"{label}={value:g}")
        if self.bad_nodes:
            parts.append(f"bad={','.join(sorted(self.bad_nodes))}")
        if self.faults:
            parts.append(f"{len(self.faults)} scripted fault(s)")
        return " ".join(parts)


@dataclass
class FailureInjector:
    """Decides which task attempts crash.

    Two mechanisms compose:

    * ``scripted`` — an explicit set of ``(task_id, attempt)`` pairs that
      must fail (deterministic tests: "kill map-0003's first attempt").
    * ``probability`` — each attempt independently fails with this
      probability, drawn from a seeded generator (chaos-style integration
      tests; for draw-order-independent schedules use
      :class:`ChaosSchedule` instead).

    A task whose every attempt up to the retry limit fails aborts the job
    with :class:`JobFailedError`, exactly as Hadoop gives up after
    ``max.attempts``.
    """

    scripted: set[tuple[str, int]] = field(default_factory=set)
    probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        # The thread-pool executor calls fail_attempt concurrently;
        # Generator draws are not thread-safe.
        self._lock = threading.Lock()

    def fail_attempt(self, task_id: str, attempt: int) -> None:
        """Raise :class:`TaskFailure` if this attempt is doomed."""
        if (task_id, attempt) in self.scripted:
            raise TaskFailure(task_id, attempt, "scripted failure")
        if self.probability > 0.0:
            with self._lock:
                doomed = self._rng.random() < self.probability
            if doomed:
                raise TaskFailure(task_id, attempt, "random failure")

    def script_failures(
        self, task_id: str, attempts: int, max_attempts: int = MAX_TASK_ATTEMPTS
    ) -> None:
        """Schedule the first ``attempts`` attempts of a task to fail.

        ``attempts`` must not exceed ``max_attempts`` (the runner's retry
        budget): scripting more failures than the budget used to wedge
        the retry loop in an unwinnable fight instead of failing the job,
        so it is now rejected at scripting time.  Pass the runner's
        actual ``max_attempts`` when it differs from the default.
        """
        if attempts > max_attempts:
            raise ValueError(
                f"cannot script {attempts} failures for {task_id}: the retry "
                f"budget is {max_attempts} attempts, so the job would fail "
                f"anyway — lower `attempts` or pass the runner's real "
                f"max_attempts"
            )
        for attempt in range(1, attempts + 1):
            self.scripted.add((task_id, attempt))


def emit_attempt_failures(
    history,
    job_name: str,
    task_id: str,
    failures: list[tuple],
    t_start: float,
    attempt_duration: float,
) -> None:
    """Record a task's failed attempts in a job history.

    ``failures`` holds ``(attempt, node, reason)`` triples — or
    ``(attempt, node, reason, fault kind[, backoff_s])`` records from the
    chaos-aware runner — in attempt order.  Attempts occupy the task's
    slot back to back, so the *i*-th attempt crashes at
    ``t_start + i * attempt_duration`` — which keeps every fault/retry
    event strictly before the successful attempt's ``task_finish`` (the
    ordering guarantee the history layer validates).  Each failure yields
    the triple ``fault_injected`` -> ``attempt_failed`` ->
    ``attempt_retried`` so the Gantt can show the full recovery timeline.
    The history object is duck-typed (anything with ``emit``) so this
    module stays import-light.
    """
    from repro.observability.events import EventKind

    for record in failures:
        attempt, node, reason = record[0], record[1], record[2]
        kind = record[3] if len(record) > 3 else FaultKind.TASK_CRASH
        backoff_s = float(record[4]) if len(record) > 4 else 0.0
        ts = t_start + attempt * attempt_duration
        history.emit(
            EventKind.FAULT_INJECTED,
            job_name,
            ts,
            task=task_id,
            node=node,
            attempt=attempt,
            fault=kind,
            reason=reason,
        )
        history.emit(
            EventKind.ATTEMPT_FAILED,
            job_name,
            ts,
            task=task_id,
            node=node,
            attempt=attempt,
            reason=reason,
        )
        history.emit(
            EventKind.ATTEMPT_RETRIED,
            job_name,
            ts,
            task=task_id,
            attempt=attempt + 1,
            backoff_s=backoff_s,
            reason=f"re-dispatched after {kind}",
        )
