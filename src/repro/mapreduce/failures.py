"""Failure injection and the task-retry policy.

Hadoop's jobtracker monitors tasks and re-executes failed attempts (up to
``mapred.map.max.attempts``, default 4), preferring a different node that
holds a replica of the input chunk.  This module provides the injection
half: a deterministic :class:`FailureInjector` the tests and ablation
benches use to crash chosen task attempts, and the :class:`TaskFailure`
exception the runner's retry loop catches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TaskFailure",
    "FailureInjector",
    "MAX_TASK_ATTEMPTS",
    "emit_attempt_failures",
]

#: Hadoop's default maximum attempts per task before the job fails.
MAX_TASK_ATTEMPTS = 4


class TaskFailure(RuntimeError):
    """Raised inside a task attempt to simulate a crash."""

    def __init__(self, task_id: str, attempt: int, reason: str = "injected failure"):
        super().__init__(f"task {task_id} attempt {attempt}: {reason}")
        self.task_id = task_id
        self.attempt = attempt
        self.reason = reason


@dataclass
class FailureInjector:
    """Decides which task attempts crash.

    Two mechanisms compose:

    * ``scripted`` — an explicit set of ``(task_id, attempt)`` pairs that
      must fail (deterministic tests: "kill map-0003's first attempt").
    * ``probability`` — each attempt independently fails with this
      probability, drawn from a seeded generator (chaos-style integration
      tests).

    A task whose every attempt up to the retry limit fails aborts the job,
    exactly as Hadoop gives up after ``max.attempts``.
    """

    scripted: set[tuple[str, int]] = field(default_factory=set)
    probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        # The thread-pool executor calls fail_attempt concurrently;
        # Generator draws are not thread-safe.
        self._lock = threading.Lock()

    def fail_attempt(self, task_id: str, attempt: int) -> None:
        """Raise :class:`TaskFailure` if this attempt is doomed."""
        if (task_id, attempt) in self.scripted:
            raise TaskFailure(task_id, attempt, "scripted failure")
        if self.probability > 0.0:
            with self._lock:
                doomed = self._rng.random() < self.probability
            if doomed:
                raise TaskFailure(task_id, attempt, "random failure")

    def script_failures(self, task_id: str, attempts: int) -> None:
        """Schedule the first ``attempts`` attempts of a task to fail."""
        for attempt in range(1, attempts + 1):
            self.scripted.add((task_id, attempt))


def emit_attempt_failures(
    history,
    job_name: str,
    task_id: str,
    failures: list[tuple[int, str, str]],
    t_start: float,
    attempt_duration: float,
) -> None:
    """Record a task's failed attempts in a job history.

    ``failures`` holds ``(attempt, node, reason)`` triples in attempt
    order.  Attempts occupy the task's slot back to back, so the *i*-th
    attempt crashes at ``t_start + i * attempt_duration`` — which keeps
    every ``attempt_failed`` event strictly before the successful
    attempt's ``task_finish`` (the ordering guarantee the history layer
    validates).  The history object is duck-typed (anything with
    ``emit``) so this module stays import-light.
    """
    from repro.observability.events import EventKind

    for attempt, node, reason in failures:
        history.emit(
            EventKind.ATTEMPT_FAILED,
            job_name,
            t_start + attempt * attempt_duration,
            task=task_id,
            node=node,
            attempt=attempt,
            reason=reason,
        )
