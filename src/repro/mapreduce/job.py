"""Mapper / Reducer / Partitioner base classes and the job description.

A MapReduce application on this substrate mirrors the Hadoop structure the
paper describes in Section IV: the developer supplies a *Mapper* class, a
*Reducer* class (optional — sampling and the DJ-Cluster preprocessing are
map-only), optionally a *Combiner* (a reducer run on each mapper's local
output, as in the k-means shuffle-volume optimization), and a *driver*
— here the declarative :class:`JobSpec` consumed by
:class:`~repro.mapreduce.runner.JobRunner`.

A map **task** processes one HDFS chunk.  The default ``run`` iterates the
chunk's records and calls ``map(key, value, ctx)`` per record, exactly like
Hadoop; vectorized mappers override ``run`` and process the chunk's
columnar :class:`~repro.geo.trace.TraceArray` in one NumPy pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.geo.trace import TraceArray
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.config import Configuration
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import Chunk, DEFAULT_RECORD_BYTES, estimate_nbytes

__all__ = [
    "MapContext",
    "ReduceContext",
    "Mapper",
    "Reducer",
    "Partitioner",
    "HashPartitioner",
    "ConstantKeyPartitioner",
    "JobSpec",
    "ARRAY_OUTPUT_KEY",
]

#: Sentinel key marking a vectorized array emission (see MapContext.emit_array).
ARRAY_OUTPUT_KEY = "__trace_array__"


class _Context:
    """Shared plumbing between map and reduce contexts."""

    def __init__(
        self,
        conf: Configuration,
        counters: Counters,
        cache: DistributedCache,
        task_id: str,
        node: str,
    ):
        self.conf = conf
        self.counters = counters
        self.cache = cache
        self.task_id = task_id
        self.node = node
        self.output: list[tuple[Any, Any]] = []
        self.output_records = 0
        self.output_nbytes = 0

    def emit(self, key: Any, value: Any, nbytes: int | None = None, n_records: int = 1) -> None:
        """Emit an intermediate/output record.

        ``nbytes`` lets vectorized callers skip per-record size estimation;
        ``n_records`` lets a single block emission count as many logical
        records (for counter fidelity).
        """
        self.output.append((key, value))
        self.output_records += n_records
        self.output_nbytes += (
            nbytes if nbytes is not None else estimate_nbytes(key) + estimate_nbytes(value)
        )

    def emit_array(self, array: TraceArray, record_bytes: int = DEFAULT_RECORD_BYTES) -> None:
        """Emit a columnar block of traces as output.

        Used by map-only vectorized jobs (sampling, DJ preprocessing): the
        runner recognizes the sentinel key and writes array-payload chunks,
        so downstream jobs keep the columnar fast path.
        """
        self.emit(
            ARRAY_OUTPUT_KEY,
            array,
            nbytes=len(array) * record_bytes,
            n_records=len(array),
        )


class MapContext(_Context):
    """Context handed to mapper ``setup``/``map``/``run``/``cleanup``."""


class ReduceContext(_Context):
    """Context handed to reducer ``setup``/``reduce``/``cleanup``."""


class Mapper:
    """Base mapper.  Subclasses implement ``map`` or override ``run``."""

    def setup(self, ctx: MapContext) -> None:
        """Called once per task before any record (loads cache entries)."""

    def run(self, chunk: Chunk, ctx: MapContext) -> None:
        """Process one chunk.  Default: record-at-a-time ``map`` calls."""
        for key, value in chunk.records():
            self.map(key, value, ctx)

    def map(self, key: Any, value: Any, ctx: MapContext) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement map() or override run()"
        )

    def cleanup(self, ctx: MapContext) -> None:
        """Called once per task after the last record."""


class Reducer:
    """Base reducer (also usable as a combiner)."""

    def setup(self, ctx: ReduceContext) -> None:
        """Called once per reduce task before the first key group."""

    def run(self, groups: Iterable[tuple[Any, list[Any]]], ctx: ReduceContext) -> None:
        for key, values in groups:
            self.reduce(key, values, ctx)

    def reduce(self, key: Any, values: list[Any], ctx: ReduceContext) -> None:
        raise NotImplementedError(f"{type(self).__name__} must implement reduce()")

    def cleanup(self, ctx: ReduceContext) -> None:
        """Called once per reduce task after the last key group."""


class Partitioner:
    """Routes an intermediate key to one of ``n_reducers`` partitions."""

    def partition(self, key: Any, n_reducers: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Hadoop's default: stable hash of the key modulo reducer count.

    Uses a deterministic hash (not Python's randomized ``hash``) so runs
    are reproducible across processes.
    """

    @staticmethod
    def _stable_hash(key: Any) -> int:
        data = repr(key).encode("utf-8", errors="replace")
        h = 2166136261  # FNV-1a 32-bit
        for byte in data:
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        return h

    def partition(self, key: Any, n_reducers: int) -> int:
        if n_reducers <= 0:
            raise ValueError("n_reducers must be positive")
        return self._stable_hash(key) % n_reducers


class ConstantKeyPartitioner(Partitioner):
    """Sends every key to partition 0 (the DJ-Cluster single-reducer merge)."""

    def partition(self, key: Any, n_reducers: int) -> int:
        return 0


def _as_factory(obj) -> Callable[[], Any]:
    """Accept a class or a zero-arg callable; return an instance factory."""
    if obj is None:
        return None
    if isinstance(obj, type):
        return obj
    if callable(obj):
        return obj
    raise TypeError(f"expected a class or factory callable, got {obj!r}")


@dataclass
class JobSpec:
    """Declarative description of one MapReduce job (the Hadoop *driver*).

    Parameters
    ----------
    name:
        Job name, used in task ids and reports.
    mapper:
        Mapper class (or zero-arg factory).  One fresh instance per task.
    reducer:
        Reducer class/factory, or ``None`` for a map-only job (sampling,
        DJ-Cluster preprocessing).
    combiner:
        Optional reducer class/factory applied to each map task's local
        output before the shuffle.
    aggregation:
        Optional :class:`~repro.mapreduce.aggregation.Aggregation`
        (class or instance) declaring the reduce as an associative
        monoid.  A runner with pre-aggregation enabled then folds map
        output into fixed-size aggregate envelopes worker-side, ships
        them through the metadata-only shuffle, and synthesizes the
        reduce from the monoid's ``finalize`` — the declared ``reducer``
        (and ``combiner``) remain the fallback when pre-aggregation is
        disabled, so the job always stays runnable on a legacy runner.
    input_paths:
        HDFS paths whose chunks feed the map phase.
    output_path:
        HDFS path the job writes (must not already exist, as in Hadoop).
    conf:
        Job configuration visible to all tasks.
    num_reducers:
        Reduce-task count (ignored for map-only jobs).
    partitioner:
        Intermediate-key router; defaults to :class:`HashPartitioner`.
    map_cost_factor / reduce_cost_factor:
        Relative per-byte compute weights consumed by the cost model —
        e.g. a Haversine k-means mapper is ~3x a squared-Euclidean one.
    """

    name: str
    mapper: Any
    input_paths: Sequence[str]
    output_path: str
    reducer: Any = None
    combiner: Any = None
    aggregation: Any = None
    conf: Configuration = field(default_factory=Configuration)
    num_reducers: int = 1
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    map_cost_factor: float = 1.0
    reduce_cost_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.input_paths:
            raise ValueError(f"job {self.name!r} has no input paths")
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        self.mapper = _as_factory(self.mapper)
        self.reducer = _as_factory(self.reducer)
        self.combiner = _as_factory(self.combiner)
        if self.combiner is not None and self.reducer is None:
            raise ValueError("a combiner requires a reduce phase")
        if self.aggregation is not None:
            if isinstance(self.aggregation, type):
                self.aggregation = self.aggregation()
            if self.reducer is None:
                raise ValueError("an aggregation requires a reduce phase")

    @property
    def map_only(self) -> bool:
        return self.reducer is None
