"""Cost model: converting an executed job DAG into simulated seconds.

The paper's Table III reports k-means iteration times measured on a 7-node
Hadoop deployment; our substrate executes in-process, so wall-clock time
would reflect this machine, not the modelled cluster.  Instead the runner
feeds the *actual* execution facts — chunk sizes, task locality, shuffle
bytes, retries — into this cost model to obtain deterministic simulated
seconds that respond to the same knobs the paper turns (chunk size, number
of nodes, distance-function cost).

Calibration
-----------
The default constants are least-squares fits to the eight Table III cells
(k = 11, 7-node Parapluie deployment, 10 map slots):

* a one-wave map phase whose longest task dominates — so halving the chunk
  size from 64 MB to 32 MB removes ``32 MB x map_cost`` from the iteration
  (observed: 7 s for squared Euclidean, 12 s for Haversine; the Haversine
  map is ~1.7x the squared-Euclidean map);
* ~30 s of fixed job overhead (job setup, task launch, commit) — consistent
  with Hadoop's well-known per-job latency floor;
* shuffle+reduce cost proportional to map-output volume (the paper's
  mapper emits one pair per trace, so this scales with the dataset and
  accounts for the 128 MB rows running ~3 s behind the 66 MB rows).

The separately reported "deployment overhead" of ~25 s (HDFS install,
daemon start, data upload) is :attr:`CostModel.deploy_overhead_s`, charged
once per deployment rather than per job, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.scheduler import Locality
from repro.mapreduce.types import Chunk

__all__ = ["CostModel", "JobTiming", "MB_F"]

MB_F = float(1024 * 1024)


@dataclass
class CostModel:
    """Tunable constants of the simulated-time model (seconds / per-MB)."""

    #: One-time HDFS deployment + data-upload overhead (paper: ~25 s).
    deploy_overhead_s: float = 25.0
    #: Fixed per-job overhead (driver, jobtracker setup, output commit).
    job_setup_s: float = 30.0
    #: Per-task launch overhead (JVM spawn in real Hadoop).
    task_startup_s: float = 1.0
    #: Map I/O cost per input MB (read + parse), independent of the
    #: algorithm's compute weight.
    map_io_s_per_mb: float = 0.15
    #: Map compute cost per input MB at ``map_cost_factor=1``.  The cost
    #: factor scales only this term — a Haversine assignment step costs
    #: ~3.2x a squared-Euclidean one, but both pay the same I/O, which is
    #: exactly how Table III's Haversine rows end up ~1.7x on the map part
    #: rather than 3.2x end to end.
    map_compute_s_per_mb: float = 0.07
    #: Extra read cost per MB when the chunk is rack-local / remote.
    rack_local_read_s_per_mb: float = 0.010
    remote_read_s_per_mb: float = 0.025
    #: Network transfer cost per MB of shuffled intermediate data.
    shuffle_s_per_mb: float = 0.015
    #: Reduce compute cost per MB of reduce input at ``reduce_cost_factor=1``.
    reduce_s_per_mb: float = 0.008
    #: Distributed-cache broadcast cost per MB per tasktracker wave.
    cache_broadcast_s_per_mb: float = 0.02
    #: Heartbeat-timeout window before the jobtracker declares a
    #: tasktracker dead (real Hadoop: ``mapred.tasktracker.expiry``-style
    #: lag; we charge a flat detection cost per lost node).
    node_loss_detect_s: float = 10.0
    #: Namenode re-replication cost per MB of under-replicated chunk data
    #: copied to a fresh datanode after node loss.
    rereplicate_s_per_mb: float = 0.02
    #: Cost per MB a reducer re-fetches after a failed shuffle fetch (the
    #: retry reads from a surviving replica / re-executed map's output).
    shuffle_refetch_s_per_mb: float = 0.02
    #: Local-disk write cost per MB of spilled run data (memory-budgeted
    #: runs; sequential local writes, cheaper than network shuffle).
    spill_write_s_per_mb: float = 0.008
    #: Local-disk read cost per MB merged back from spilled runs.
    spill_read_s_per_mb: float = 0.005

    @property
    def map_cost_s_per_mb(self) -> float:
        """Total per-MB map cost at unit cost factor (I/O + compute)."""
        return self.map_io_s_per_mb + self.map_compute_s_per_mb

    def map_task_time(self, chunk: Chunk, locality: str, cost_factor: float = 1.0) -> float:
        """Duration of one map attempt over ``chunk`` read at ``locality``."""
        mb = chunk.nbytes / MB_F
        time = self.task_startup_s + mb * (
            self.map_io_s_per_mb + self.map_compute_s_per_mb * cost_factor
        )
        if locality == Locality.RACK_LOCAL:
            time += mb * self.rack_local_read_s_per_mb
        elif locality == Locality.REMOTE:
            time += mb * self.remote_read_s_per_mb
        return time

    def reduce_task_time(
        self,
        input_nbytes: int,
        cost_factor: float = 1.0,
        cross_nbytes: int | None = None,
    ) -> float:
        """Duration of one reduce attempt: fetch + sort/merge + reduce.

        ``cross_nbytes`` is the portion of the input that actually crossed
        the network.  When locality-aware reduce placement knows per-node
        byte provenance it passes the cross-node share here, so the fetch
        term charges only real network traffic; the sort/merge/reduce term
        always covers the full input.  ``None`` (the default) charges the
        whole input as fetched — the legacy behaviour.
        """
        mb = input_nbytes / MB_F
        fetch_mb = mb if cross_nbytes is None else cross_nbytes / MB_F
        return (
            self.task_startup_s
            + fetch_mb * self.shuffle_s_per_mb
            + mb * self.reduce_s_per_mb * cost_factor
        )

    def cache_broadcast_time(self, cache_nbytes: int) -> float:
        return (cache_nbytes / MB_F) * self.cache_broadcast_s_per_mb

    def rereplication_time(self, nbytes: int) -> float:
        """Cost of re-replicating ``nbytes`` of chunk data after node loss."""
        return (nbytes / MB_F) * self.rereplicate_s_per_mb

    def shuffle_refetch_time(self, nbytes: int) -> float:
        """Cost of one reducer re-fetching ``nbytes`` of map output."""
        return (nbytes / MB_F) * self.shuffle_refetch_s_per_mb

    def spill_write_time(self, nbytes: int) -> float:
        """Cost of writing ``nbytes`` of spill data to local disk."""
        return (nbytes / MB_F) * self.spill_write_s_per_mb

    def spill_read_time(self, nbytes: int) -> float:
        """Cost of reading ``nbytes`` of spill data back during a merge."""
        return (nbytes / MB_F) * self.spill_read_s_per_mb


@dataclass
class JobTiming:
    """Breakdown of one job's simulated duration.

    ``spill_s`` is the simulated local-disk IO of memory-budget spills
    (run writes + merge reads).  Hadoop performs these on a background
    spill thread overlapped with map compute, so it is reported but
    **excluded** from ``total_s`` — a budgeted run finishes at the same
    simulated instant as an unbudgeted one, which is what keeps job
    histories comparable across budgets.
    """

    setup_s: float
    map_s: float
    reduce_s: float
    retry_penalty_s: float = 0.0
    spill_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.setup_s + self.map_s + self.reduce_s + self.retry_penalty_s

    def __repr__(self) -> str:
        spill = f", spill={self.spill_s:.1f}" if self.spill_s else ""
        return (
            f"JobTiming(total={self.total_s:.1f}s: setup={self.setup_s:.1f}, "
            f"map={self.map_s:.1f}, reduce={self.reduce_s:.1f}, "
            f"retries={self.retry_penalty_s:.1f}{spill})"
        )
