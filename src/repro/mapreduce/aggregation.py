"""Aggregation algebra: declaring a reduce as an associative monoid.

Meta-MapReduce (arXiv:1508.01171) observes that when the reduce step is a
pure aggregation, the shuffle need not move data at all — only *metadata*
about the data: small, fixed-size partial aggregates.  This module gives a
job a way to declare that structure.  An :class:`Aggregation` is a monoid
over per-key partials:

* ``lift(key, value)`` turns one raw mapper output value into a partial;
* ``merge(acc, partial)`` combines two partials (associative by contract);
* ``finalize(key, acc, ctx)`` emits the reduce output for a key;
* ``lift_pairs(pairs)`` optionally vectorizes the lift+merge of a whole
  map task's output in one NumPy pass (integer rollups use
  ``np.add.reduceat`` on the columnar key/value arrays).

With a declared aggregation the runner pre-aggregates map output inside
the backend attempt loop — each map task ships one tiny
:class:`AggregateEnvelope` per (partition, key-group) instead of its raw
pairs — and the shuffle's metadata-only path coalesces each node's
envelopes so one fixed-size partial per (node, partition, key) crosses
the network.

Determinism contract
--------------------
Float addition is not associative, so a float-valued monoid's result
depends on the merge tree.  The framework therefore fixes one canonical
tree and uses it on **every** path (metadata-only shuffle, generic
fallback shuffle, spilled shuffle, all three backends): within a key,
envelopes are folded per *source node* in task order, then the node
partials are folded in node-name order.  The transport-side coalescing
in the metadata-only shuffle computes exactly the per-node fold the
reducer would have computed, so shipping coalesced envelopes is
byte-identical to shipping per-task envelopes.  Exactly-associative
monoids (integer counts) are invariant under any tree, canonical or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.mapreduce.counters import Counters, STANDARD
from repro.mapreduce.job import ReduceContext, Reducer

__all__ = [
    "Aggregation",
    "AggregateEnvelope",
    "AggregationReducer",
    "AggregationReducerFactory",
    "preaggregate",
    "fold_envelopes",
    "coalesce_by_node",
    "CountAggregation",
    "CountSumReducer",
]


@dataclass(frozen=True)
class AggregateEnvelope:
    """One pre-aggregated partial travelling through the shuffle.

    ``value`` is the monoid partial; ``node`` and ``task`` identify the
    map task that produced it (the planned node, which stays stable even
    when chaos re-executes the task elsewhere — keeping the canonical
    merge tree, and therefore the job output, independent of recovery).
    ``records`` counts the raw mapper records folded into the partial and
    ``nbytes`` is the modelled fixed wire size of the envelope.
    """

    value: Any
    node: str
    task: str
    records: int
    nbytes: int


class Aggregation:
    """Base class for a job's declared reduce monoid."""

    #: Modelled wire size of one envelope: key + partial, as a packed
    #: binary record.  Subclasses override to match their partial layout.
    envelope_nbytes: int = 24

    def zero(self) -> Any:
        """Identity partial (used only for empty folds)."""
        raise NotImplementedError

    def lift(self, key: Any, value: Any) -> Any:
        """One raw mapper output value as a partial."""
        raise NotImplementedError

    def merge(self, acc: Any, partial: Any) -> Any:
        """Combine two partials.  Must be associative by contract; the
        framework still applies its canonical fold order so float-valued
        near-monoids stay deterministic."""
        raise NotImplementedError

    def finalize(self, key: Any, acc: Any, ctx: ReduceContext) -> None:
        """Emit the reduce output for ``key`` from its folded partial."""
        raise NotImplementedError

    def lift_pairs(
        self, pairs: Sequence[tuple[Any, Any]]
    ) -> list[tuple[Any, Any]] | None:
        """Vectorized lift+merge of one map task's output, or ``None``.

        Returns one ``(key, partial)`` per key in sorted key order, or
        ``None`` to use the generic object-level loop.  Implementations
        must produce partials bit-identical to the object-level path
        (the exactness tests pin this down).
        """
        return None


class CountAggregation(Aggregation):
    """Sum of integer values per key — an exactly associative monoid.

    The vectorized form runs ``np.add.reduceat`` over the columnar
    int64 key/value layout: one stable argsort groups the keys, one
    reduceat produces every per-key partial sum.  Integer addition is
    exact, so the fast path is bit-identical to the object loop and the
    result is invariant under any merge tree.
    """

    #: key int64 + count int64, packed.
    envelope_nbytes = 16

    def zero(self) -> int:
        return 0

    def lift(self, key: Any, value: Any) -> int:
        return int(value)

    def merge(self, acc: int, partial: int) -> int:
        return acc + partial

    def finalize(self, key: Any, acc: int, ctx: ReduceContext) -> None:
        ctx.emit(key, int(acc))

    def lift_pairs(
        self, pairs: Sequence[tuple[Any, Any]]
    ) -> list[tuple[Any, Any]] | None:
        if not pairs:
            return []
        if not all(
            type(k) is int and type(v) is int for k, v in pairs
        ):
            return None
        keys = np.fromiter((k for k, _ in pairs), dtype=np.int64, count=len(pairs))
        values = np.fromiter((v for _, v in pairs), dtype=np.int64, count=len(pairs))
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        bounds = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        sums = np.add.reduceat(values[order], starts)
        return [
            (int(k), int(s))
            for k, s in zip(sorted_keys[starts].tolist(), sums.tolist())
        ]


class CountSumReducer(Reducer):
    """Legacy fallback reduce for :class:`CountAggregation` jobs.

    A plain integer sum per key — what the synthesized aggregation
    reduce computes when pre-aggregation is enabled.  Integer addition
    is exactly associative, so both paths emit identical records.
    """

    def reduce(self, key: Any, values: list[Any], ctx: ReduceContext) -> None:
        ctx.emit(key, int(sum(int(v) for v in values)))


def preaggregate(
    aggregation: Aggregation,
    task_output: Sequence[tuple[Any, Any]],
    node: str,
    task_id: str,
) -> tuple[list[tuple[Any, AggregateEnvelope]], Counters]:
    """Fold one map task's output into one envelope per key-group.

    The vectorized ``lift_pairs`` fast path is tried first; otherwise
    values are grouped (:func:`~repro.mapreduce.shuffle.group_sorted`)
    and folded object-by-object in arrival order.  Returns the envelope
    pairs in sorted key order plus pre-agg accounting counters.
    """
    from repro.mapreduce.shuffle import group_sorted

    counters = Counters()
    n_raw = len(task_output)
    records_per_key: list[tuple[Any, Any, int]] = []
    lifted = aggregation.lift_pairs(task_output)
    if lifted is not None:
        grouped = group_sorted(list(task_output))
        by_key = {k: len(vs) for k, vs in grouped}
        for key, partial in lifted:
            records_per_key.append((key, partial, by_key[key]))
    else:
        for key, values in group_sorted(list(task_output)):
            acc = aggregation.lift(key, values[0])
            for value in values[1:]:
                acc = aggregation.merge(acc, aggregation.lift(key, value))
            records_per_key.append((key, acc, len(values)))
    pairs = [
        (
            key,
            AggregateEnvelope(
                value=partial,
                node=node,
                task=task_id,
                records=n_records,
                nbytes=aggregation.envelope_nbytes,
            ),
        )
        for key, partial, n_records in records_per_key
    ]
    counters.increment(STANDARD.GROUP_TASK, STANDARD.PREAGG_INPUT_RECORDS, n_raw)
    counters.increment(STANDARD.GROUP_TASK, STANDARD.PREAGG_OUTPUT_RECORDS, len(pairs))
    return pairs, counters


def _node_major(envelopes: Sequence[AggregateEnvelope]) -> list[AggregateEnvelope]:
    """Envelopes in the canonical (node, task) fold order."""
    return sorted(envelopes, key=lambda e: (e.node, e.task))


def fold_envelopes(
    aggregation: Aggregation, envelopes: Sequence[AggregateEnvelope]
) -> Any:
    """Fold one key's envelopes with the canonical merge tree.

    Per source node in task order first, then across nodes in node-name
    order; each fold seeds its accumulator with the first partial (never
    ``zero``), so a pre-coalesced per-node envelope replays the exact
    float operations of the per-task fold.
    """
    ordered = _node_major(envelopes)
    node_accs: list[Any] = []
    i = 0
    while i < len(ordered):
        node = ordered[i].node
        acc = ordered[i].value
        i += 1
        while i < len(ordered) and ordered[i].node == node:
            acc = aggregation.merge(acc, ordered[i].value)
            i += 1
        node_accs.append(acc)
    total = node_accs[0]
    for acc in node_accs[1:]:
        total = aggregation.merge(total, acc)
    return total


def coalesce_by_node(
    aggregation: Aggregation, envelopes: Sequence[AggregateEnvelope]
) -> list[AggregateEnvelope]:
    """One envelope per source node — the metadata-only transport merge.

    Each node's tasktracker folds its own tasks' partials (in task order)
    before anything crosses the network, exactly the per-node fold of
    :func:`fold_envelopes` — so reducers see the same canonical tree
    whether or not coalescing happened.
    """
    ordered = _node_major(envelopes)
    out: list[AggregateEnvelope] = []
    i = 0
    while i < len(ordered):
        node = ordered[i].node
        acc = ordered[i].value
        records = ordered[i].records
        task = ordered[i].task
        i += 1
        while i < len(ordered) and ordered[i].node == node:
            acc = aggregation.merge(acc, ordered[i].value)
            records += ordered[i].records
            i += 1
        out.append(
            AggregateEnvelope(
                value=acc,
                node=node,
                task=task,
                records=records,
                nbytes=aggregation.envelope_nbytes,
            )
        )
    return out


class AggregationReducer(Reducer):
    """The reducer the runner synthesizes from a declared aggregation.

    Runs through the ordinary reduce attempt loop (same retries, chaos
    faults and counters as a user reducer), folding each key's envelopes
    with the canonical merge tree and emitting ``finalize``'s output.
    """

    def __init__(self, aggregation: Aggregation):
        self.aggregation = aggregation

    def reduce(self, key: Any, values: list[Any], ctx: ReduceContext) -> None:
        acc = fold_envelopes(self.aggregation, values)
        self.aggregation.finalize(key, acc, ctx)


class AggregationReducerFactory:
    """Picklable zero-arg factory for :class:`AggregationReducer` (the
    process backend pickles reducer factories into worker messages)."""

    def __init__(self, aggregation: Aggregation):
        self.aggregation = aggregation

    def __call__(self) -> AggregationReducer:
        return AggregationReducer(self.aggregation)
