"""Job counters, mirroring Hadoop's counter groups.

Counters are how the benchmarks observe what actually happened inside a
job: records in/out of each phase, shuffle bytes, combiner effectiveness
(ablation X3 in DESIGN.md), and scheduler locality (node-local /
rack-local / remote map tasks).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

__all__ = ["Counters", "STANDARD"]


class STANDARD:
    """Well-known counter names used by the framework itself."""

    GROUP_TASK = "task"
    MAP_INPUT_RECORDS = "map_input_records"
    MAP_OUTPUT_RECORDS = "map_output_records"
    MAP_OUTPUT_BYTES = "map_output_bytes"
    COMBINE_INPUT_RECORDS = "combine_input_records"
    COMBINE_OUTPUT_RECORDS = "combine_output_records"
    PREAGG_INPUT_RECORDS = "preagg_input_records"
    PREAGG_OUTPUT_RECORDS = "preagg_output_records"
    REDUCE_INPUT_RECORDS = "reduce_input_records"
    REDUCE_INPUT_GROUPS = "reduce_input_groups"
    REDUCE_OUTPUT_RECORDS = "reduce_output_records"
    SHUFFLE_BYTES = "shuffle_bytes"
    SHUFFLE_CROSS_NODE_BYTES = "shuffle_cross_node_bytes"

    GROUP_SCHEDULER = "scheduler"
    DATA_LOCAL_MAPS = "data_local_maps"
    RACK_LOCAL_MAPS = "rack_local_maps"
    REMOTE_MAPS = "remote_maps"
    FAILED_TASKS = "failed_tasks"
    SPECULATIVE_TASKS = "speculative_tasks"
    MAP_TASKS = "map_tasks_launched"
    REDUCE_TASKS = "reduce_tasks_launched"
    NODES_LOST = "nodes_lost"
    NODES_BLACKLISTED = "nodes_blacklisted"
    REPLICAS_HEALED = "replicas_healed"
    SHUFFLE_REFETCHES = "shuffle_refetches"


class Counters:
    """Hierarchical (group, name) -> int counters.

    Thread-safety note: increments from concurrent map tasks are funnelled
    through per-task local counter sets and merged by the runner, so this
    class needs no locking of its own.
    """

    def __init__(self) -> None:
        self._groups: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        if amount:
            self._groups[group][name] += int(amount)

    def value(self, group: str, name: str) -> int:
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> dict[str, int]:
        return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        for group, names in other._groups.items():
            mine = self._groups[group]
            for name, amount in names.items():
                mine[name] += amount

    def __iter__(self) -> Iterator[tuple[str, str, int]]:
        for group in sorted(self._groups):
            for name in sorted(self._groups[group]):
                yield group, name, self._groups[group][name]

    def to_dict(self) -> dict[str, dict[str, int]]:
        """Sorted plain-dict snapshot (the job-history export format).

        Groups and names are emitted in sorted order so serialized
        histories are byte-stable across runs and Python hash seeds.
        """
        out: dict[str, dict[str, int]] = {}
        for group, name, value in self:
            out.setdefault(group, {})[name] = value
        return out

    # Backwards-compatible alias; ``to_dict`` is the canonical spelling.
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict[str, dict[str, int]]) -> "Counters":
        """Inverse of :meth:`to_dict`: ``from_dict(c.to_dict()) == c``."""
        counters = cls()
        for group, names in data.items():
            for name, amount in names.items():
                counters.increment(group, name, int(amount))
        return counters

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # -- pickling ----------------------------------------------------------
    # The nested ``defaultdict(lambda: ...)`` is not picklable, but process
    # execution backends ship per-task counters back to the driver.  State
    # round-trips through the sorted ``to_dict`` form, so a pickled copy
    # compares (and serializes) identically to the original.
    def __getstate__(self) -> dict[str, dict[str, int]]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, dict[str, int]]) -> None:
        self._groups = defaultdict(lambda: defaultdict(int))
        for group, names in state.items():
            for name, amount in names.items():
                self._groups[group][name] = int(amount)

    def __repr__(self) -> str:
        lines = [f"{g}.{n}={v}" for g, n, v in self]
        return "Counters(" + ", ".join(lines) + ")"
