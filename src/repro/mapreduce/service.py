"""The multi-tenant job service: ``submit(job, tenant) → JobFuture``.

The paper's premise is many curators sharing one cluster for privacy
analyses over millions of traces, but :class:`~repro.mapreduce.runner.
JobRunner` is strictly one-job-at-a-time.  :class:`JobService` is the
control plane layered on top of it:

* **submit → future.**  ``submit(job, tenant=...)`` validates the tenant
  and its admission quota, snapshots the tenant's distributed cache, and
  enqueues the job; the returned :class:`JobFuture` exposes
  status/result/cancel, exactly like ``concurrent.futures``.
* **Weighted fair share.**  A background dispatcher drains the queue in
  stride-scheduling order: each tenant carries a virtual time that grows
  by ``slot_seconds / weight`` per job it runs, and the next job always
  comes from the pending tenant with the smallest ``(vtime, name)`` — so
  a weight-2 tenant is dispatched twice as often as a weight-1 peer and
  no queued tenant starves.  The *simulated* task-granular interleave of
  everything that ran is re-planned over the shared slot pool by
  :func:`~repro.mapreduce.scheduler.plan_fair_share`, reusing the exact
  per-task durations the locality/cost model produced.
* **Determinism.**  The data plane stays serialized — one job executes
  at a time through one inner runner — so every tenant's outputs,
  counters and per-job timings are byte-identical to a solo
  ``JobRunner.run(job)`` of the same driver, on every backend and under
  a fixed chaos schedule.  Concurrency is simulated where it belongs:
  in the scheduler, on the simulated clock.
* **Result cache.**  À la Meta-MapReduce (arXiv:1508.01171): recomputing
  an identical (dataset version, job spec) pair is pure wasted data
  movement, so completed outputs are copied into ``.cache/<digest>`` on
  the simulated HDFS and an identical resubmission is served back with
  **zero map tasks executed**.  The key covers the input paths *and
  their namenode versions*, the mapper/reducer/combiner/partitioner
  identities, the job conf, reducer count, cost factors, and a
  fingerprint of the distributed-cache snapshot (so k-means iterations
  with fresh centroids never false-hit).  Jobs whose spec cannot be
  fingerprinted (lambda mappers, unhashable cache payloads like the
  DJ-Cluster index broadcast) are simply never cached.  Repeat *index
  builds* are deduplicated one layer down instead, by the
  :class:`~repro.index.persistent.IndexCatalog`, and served queries go
  through :meth:`TenantClient.query_engine` without submitting jobs at
  all (``docs/SERVING.md``).

Tenancy is threaded through observability: ``job_submit`` /
``job_dispatch`` / ``result_cache_hit`` / ``result_cache_store`` events
land in the shared :class:`~repro.observability.history.JobHistory`, and
``job_start`` events carry a ``tenant`` tag that `repro history` uses
for per-tenant accounting and Gantt filtering.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import deque
from concurrent.futures import CancelledError
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.geo.trace import TraceArray
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.config import MapReduceConfig, validate_tenants
from repro.mapreduce.counters import Counters
from repro.mapreduce.failures import ChaosSchedule, FailureInjector
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec
from repro.mapreduce.runner import JobResult, JobRunner
from repro.mapreduce.scheduler import (
    FairShareJob,
    FairSharePlan,
    MapPhasePlan,
    RetryPolicy,
    plan_fair_share,
)
from repro.mapreduce.simtime import CostModel, JobTiming
from repro.observability.events import EventKind
from repro.observability.history import JobHistory

__all__ = [
    "JobService",
    "JobFuture",
    "JobStatus",
    "TenantSpec",
    "TenantClient",
    "ResultCache",
    "ServiceReport",
    "QuotaExceededError",
    "UnknownTenantError",
    "result_cache_key",
]

#: Counter group for service-level bookkeeping.
SERVICE_GROUP = "org.apache.hadoop.mapred.JobService"
RESULT_CACHE_HITS = "RESULT_CACHE_HITS"

#: HDFS prefix the result cache stores job outputs under.
RESULT_CACHE_PREFIX = ".cache"


class QuotaExceededError(RuntimeError):
    """A tenant hit its admission quota (``max_queued``) at submit time."""


class UnknownTenantError(ValueError):
    """A submit named a tenant that is not in the service's roster."""


class JobStatus:
    """Lifecycle states of a submitted job (see :class:`JobFuture`)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service-level agreement.

    ``weight`` is the fair-share weight (2.0 gets twice the slot-seconds
    of 1.0 under contention); ``max_queued`` is the admission quota —
    the most jobs the tenant may have queued or running at once
    (``None`` = unlimited).  Validation mirrors
    :class:`~repro.mapreduce.config.MapReduceConfig`.
    """

    name: str
    weight: float = 1.0
    max_queued: int | None = None

    def __post_init__(self) -> None:
        validate_tenants({self.name: {"weight": self.weight, "max_queued": self.max_queued}})


class JobFuture:
    """Handle to one submitted job: status / result / cancel.

    The contract mirrors ``concurrent.futures.Future``: ``result()``
    blocks until the job finishes and either returns its
    :class:`~repro.mapreduce.runner.JobResult` or re-raises the job's
    exception (``CancelledError`` for cancelled submissions).
    ``cancel()`` succeeds only while the job is still queued — the
    data plane never aborts a running job mid-task.
    """

    def __init__(self, tenant: str, job_name: str) -> None:
        self.tenant = tenant
        self.job_name = job_name
        #: True once the result cache served this submission.
        self.cache_hit = False
        #: Global dispatch index (order the fair-share dispatcher picked
        #: jobs), or ``None`` while queued/cancelled.
        self.dispatch_index: int | None = None
        self._status = JobStatus.QUEUED
        self._result: JobResult | None = None
        self._exception: BaseException | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._cancel_fn = None  # installed by the service

    # -- inspection ---------------------------------------------------------
    @property
    def status(self) -> str:
        return self._status

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_name!r} still {self._status}")
        if self._status == JobStatus.CANCELLED:
            raise CancelledError(self.job_name)
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_name!r} still {self._status}")
        if self._status == JobStatus.CANCELLED:
            return CancelledError(self.job_name)
        return self._exception

    def cancel(self) -> bool:
        """Withdraw the job if it has not been dispatched yet."""
        if self._cancel_fn is None:
            return False
        return self._cancel_fn(self)

    # -- resolution (service-side) ------------------------------------------
    def _mark_running(self, dispatch_index: int) -> None:
        with self._lock:
            self._status = JobStatus.RUNNING
            self.dispatch_index = dispatch_index

    def _resolve(self, result: JobResult | None, exc: BaseException | None) -> None:
        with self._lock:
            if exc is not None:
                self._status = JobStatus.FAILED
                self._exception = exc
            else:
                self._status = JobStatus.DONE
                self._result = result
            self._done.set()

    def _mark_cancelled(self) -> bool:
        with self._lock:
            if self._status != JobStatus.QUEUED:
                return False
            self._status = JobStatus.CANCELLED
            self._done.set()
            return True

    def __repr__(self) -> str:
        return (
            f"JobFuture({self.job_name!r}, tenant={self.tenant!r}, "
            f"status={self._status!r})"
        )


# ---------------------------------------------------------------------------
# Result-cache keying
# ---------------------------------------------------------------------------


def _fingerprint_value(value: Any) -> str | None:
    """A stable digest-able description of a plain value.

    Returns ``None`` for anything that cannot be fingerprinted reliably
    (arbitrary objects, e.g. an R-tree) — the caller must then treat the
    job as uncacheable rather than risk a false hit.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, bytes):
        return f"bytes:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, np.ndarray):
        body = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return f"ndarray:{value.dtype}:{value.shape}:{body}"
    if isinstance(value, TraceArray):
        data = getattr(value, "_data")
        users = getattr(value, "_users")
        body = hashlib.sha256(np.ascontiguousarray(data).tobytes()).hexdigest()
        return f"tracearray:{users!r}:{body}"
    if isinstance(value, (list, tuple)):
        parts = [_fingerprint_value(v) for v in value]
        if any(p is None for p in parts):
            return None
        return f"seq:[{','.join(parts)}]"
    if isinstance(value, Mapping):
        parts = []
        for key in sorted(value, key=repr):
            fp = _fingerprint_value(value[key])
            if fp is None:
                return None
            parts.append(f"{key!r}={fp}")
        return f"map:{{{','.join(parts)}}}"
    return None


def _fingerprint_callable(obj: Any) -> str | None:
    """Identity of a mapper/reducer/combiner factory, if nameable.

    Classes fingerprint as their qualified name — the spec identity a
    resubmission shares.  Arbitrary closures don't (their behaviour can
    differ run to run), so jobs built on them are uncacheable.
    """
    if obj is None:
        return "none"
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    return None


def result_cache_key(
    job: JobSpec, hdfs: SimulatedHDFS, cache_snapshot: dict[str, Any]
) -> str | None:
    """The (dataset version, job spec) digest, or ``None`` if uncacheable.

    Two submissions share a key iff they would provably compute the same
    output: same input files *at the same namenode versions*, same
    mapper/reducer/combiner/partitioner identities, same conf, reducer
    count and cost factors, and the same distributed-cache snapshot
    content.  The job *name* and *output path* are deliberately
    excluded — resubmitting under a new name/output is exactly the hit
    case.
    """
    parts: list[str] = []
    for tag, factory in (
        ("mapper", job.mapper), ("reducer", job.reducer), ("combiner", job.combiner)
    ):
        fp = _fingerprint_callable(factory)
        if fp is None:
            return None
        parts.append(f"{tag}={fp}")
    partitioner = job.partitioner
    state_fp = _fingerprint_value(getattr(partitioner, "__dict__", {}))
    if state_fp is None:
        return None
    parts.append(
        f"partitioner={type(partitioner).__module__}."
        f"{type(partitioner).__qualname__}:{state_fp}"
    )
    conf_fp = _fingerprint_value(job.conf.as_dict())
    if conf_fp is None:
        return None
    parts.append(f"conf={conf_fp}")
    for path in job.input_paths:
        parts.append(f"input={path}@v{hdfs.version(path)}")
    snapshot_fp = _fingerprint_value(cache_snapshot)
    if snapshot_fp is None:
        return None
    parts.append(f"cache={snapshot_fp}")
    parts.append(f"reducers={0 if job.map_only else job.num_reducers}")
    parts.append(f"cost={job.map_cost_factor}:{job.reduce_cost_factor}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:24]


class ResultCache:
    """Completed job outputs, stored on HDFS under ``.cache/<digest>``."""

    def __init__(self, hdfs: SimulatedHDFS, prefix: str = RESULT_CACHE_PREFIX):
        self.hdfs = hdfs
        self.prefix = prefix
        self._entries: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> str | None:
        """The cached output path for ``key``, if still present on HDFS."""
        path = self._entries.get(key)
        if path is not None and not self.hdfs.exists(path):
            del self._entries[key]  # someone deleted the cached copy
            return None
        return path

    def store(self, key: str, output_path: str) -> int | None:
        """Copy a finished job's output into the cache; returns bytes
        copied, or ``None`` if the key was already cached."""
        if key in self._entries and self.hdfs.exists(self._entries[key]):
            return None
        path = f"{self.prefix}/{key}"
        if self.hdfs.exists(path):
            self._entries[key] = path
            return None
        nbytes = self.hdfs.copy(output_path, path)
        self._entries[key] = path
        return nbytes

    def serve(self, key: str, output_path: str) -> int:
        """Materialize a hit: copy the cached output to ``output_path``."""
        source = self._entries[key]
        return self.hdfs.copy(source, output_path)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


@dataclass
class _TenantState:
    spec: TenantSpec
    cache: DistributedCache = field(default_factory=DistributedCache)
    queue: deque = field(default_factory=deque)
    running: int = 0
    vtime: float = 0.0
    slot_seconds: float = 0.0
    jobs_done: int = 0
    cache_hits: int = 0

    @property
    def admitted(self) -> int:
        return len(self.queue) + self.running


@dataclass
class _Submission:
    order: int
    tenant: str
    job: JobSpec
    snapshot: dict[str, Any]
    future: JobFuture
    #: Extra JSON-safe labels stamped into the job's JOB_SUBMIT/JOB_START
    #: events (the streaming layer tags jobs with their window index).
    tags: dict[str, Any] | None = None


class TenantClient:
    """One tenant's runner-shaped view of the service.

    Exposes the attribute surface the algorithm drivers use
    (``run`` / ``hdfs`` / ``cluster`` / ``cache`` / ``history`` /
    ``cost_model``), so ``run_sampling_job(service.client("alice"), ...)``
    works unchanged — each ``run`` becomes a submit + blocking wait, and
    ``cache`` mutations touch only this tenant's distributed cache.
    Tenants must keep their HDFS paths disjoint (per-tenant workdirs);
    the service fails a job whose output path already exists, exactly
    like the runner.
    """

    def __init__(self, service: "JobService", tenant: str):
        if tenant not in service.tenants:
            raise UnknownTenantError(
                f"unknown tenant {tenant!r}; known tenants: "
                f"{', '.join(sorted(service.tenants))}"
            )
        self.service = service
        self.tenant = tenant
        #: Labels attached to every subsequent submit (JSON-safe values);
        #: the streaming manager sets ``{"window": i}`` around each
        #: window's jobs so histories can be rolled up per window.
        self.tags: dict[str, Any] | None = None

    @property
    def hdfs(self) -> SimulatedHDFS:
        return self.service.hdfs

    @property
    def cluster(self):
        return self.service.cluster

    @property
    def cost_model(self) -> CostModel:
        return self.service.cost_model

    @property
    def history(self) -> JobHistory:
        return self.service.history

    @property
    def cache(self) -> DistributedCache:
        return self.service._tenants[self.tenant].cache

    def submit(self, job: JobSpec) -> JobFuture:
        return self.service.submit(job, tenant=self.tenant, tags=self.tags)

    def run(self, job: JobSpec) -> JobResult:
        """Submit and block — the drop-in for ``JobRunner.run``."""
        return self.submit(job).result()

    def catalog(self):
        """The service-wide :class:`~repro.index.persistent.IndexCatalog`
        (indexes, like HDFS files, are shared across tenants)."""
        from repro.index.persistent import IndexCatalog

        return IndexCatalog(self.hdfs)

    def query_engine(self, path: str | None = None, key: str | None = None):
        """A :class:`~repro.index.persistent.QueryEngine` over a persisted
        index — point/range/radius/kNN with **zero map tasks per query**.

        ``path`` opens the index stored at an explicit HDFS path;
        ``key`` resolves it through the catalog.  Queries are charged to
        the shared simulated clock and traced as ``query_served`` events
        under the ``{tenant}:serving`` job tag.
        """
        from repro.index.persistent import PersistentRTree, QueryEngine

        if (path is None) == (key is None):
            raise ValueError("pass exactly one of path= or key=")
        index = (
            PersistentRTree.open(self.hdfs, path)
            if path is not None
            else self.catalog().open(key)
        )
        return QueryEngine(
            index,
            hdfs=self.hdfs,
            cost_model=self.cost_model,
            history=self.history,
            job=f"{self.tenant}:serving",
        )


@dataclass
class ServiceReport:
    """Multi-tenant accounting over everything the service ran.

    ``fairness`` holds each tenant's slot-second share over the
    *contended window* (the interval where every tenant still had work)
    against its weight share; the acceptance gate is
    ``max |deviation| <= 0.2``.  ``interleaved_makespan_s`` is the
    fair-share plan's simulated makespan; ``serial_s`` is the sum of the
    same jobs' solo task time — their ratio is the consolidation win the
    paper's shared-cluster premise banks on.
    """

    tenants: dict[str, dict[str, Any]]
    interleaved_makespan_s: float
    serial_s: float
    contended_window_s: float
    plan: FairSharePlan

    @property
    def speedup(self) -> float:
        if self.interleaved_makespan_s <= 0:
            return 1.0
        return self.serial_s / self.interleaved_makespan_s

    @property
    def max_abs_deviation(self) -> float:
        contending = [
            row for row in self.tenants.values() if row["contended_slot_s"] > 0
        ]
        if len(contending) < 2:
            return 0.0
        return max(abs(row["deviation"]) for row in contending)

    def render(self, width: int = 72) -> str:
        lines = ["multi-tenant service report", "=" * width]
        header = (
            f"{'tenant':<12} {'w':>4} {'jobs':>5} {'hits':>5} "
            f"{'slot-s':>10} {'share':>7} {'fair':>7} {'dev':>7}"
        )
        lines.append(header)
        lines.append("-" * width)
        for name in sorted(self.tenants):
            row = self.tenants[name]
            lines.append(
                f"{name:<12} {row['weight']:>4.1f} {row['jobs']:>5} "
                f"{row['cache_hits']:>5} {row['slot_seconds']:>10.1f} "
                f"{row['share']:>6.1%} {row['weight_share']:>6.1%} "
                f"{row['deviation']:>+6.1%}"
            )
        lines.append("-" * width)
        lines.append(
            f"interleaved makespan {self.interleaved_makespan_s:.1f}s  "
            f"vs serial {self.serial_s:.1f}s  "
            f"(speedup {self.speedup:.2f}x)  "
            f"contended window {self.contended_window_s:.1f}s  "
            f"max fairness deviation {self.max_abs_deviation:.1%}"
        )
        return "\n".join(lines)


class JobService:
    """Multi-tenant front end over one :class:`JobRunner` deployment.

    Parameters mirror :class:`~repro.mapreduce.runner.JobRunner` (they
    configure the inner runner) plus the service-level knobs:

    ``tenants``
        The roster: ``{name: weight}`` or ``{name: {"weight": w,
        "max_queued": q}}``, validated by
        :class:`~repro.mapreduce.config.MapReduceConfig`.  ``None``
        declares the single tenant ``"default"`` with weight 1.
    ``result_cache``
        Enable the (dataset version, job spec) result cache
        (default ``True``).
    ``start``
        Start the dispatcher immediately (default).  ``start=False``
        leaves the service *paused*: submits queue up and nothing runs
        until :meth:`start` — how the benchmark builds a deterministic
        backlog before opening the floodgates.

    Use as a context manager (or call :meth:`close`) to stop the
    dispatcher and release backend resources.
    """

    def __init__(
        self,
        hdfs: SimulatedHDFS,
        tenants: Mapping[str, Any] | None = None,
        cost_model: CostModel | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        prefer_locality: bool = True,
        speculative: bool = False,
        history: JobHistory | None = None,
        chaos: ChaosSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
        failure_injector: FailureInjector | None = None,
        memory_budget_mb: float | None = None,
        spill_dir: str | None = None,
        result_cache: bool = True,
        start: bool = True,
    ):
        # Validates backend/max_workers/memory budget *and* the tenant
        # roster in one place (the MapReduceConfig bugfix ride-along).
        self.config = MapReduceConfig(
            backend=executor,
            max_workers=max_workers,
            memory_budget_mb=memory_budget_mb,
            tenants=dict(tenants) if tenants is not None else None,
        )
        normalized = (
            validate_tenants(tenants)
            if tenants is not None
            else {"default": {"weight": 1.0, "max_queued": None}}
        )
        self.hdfs = hdfs
        self.cluster = hdfs.cluster
        self.cost_model = cost_model or CostModel()
        self._runner = JobRunner(
            hdfs,
            cost_model=self.cost_model,
            executor=executor,
            max_workers=max_workers,
            prefer_locality=prefer_locality,
            speculative=speculative,
            history=history,
            chaos=chaos,
            retry_policy=retry_policy,
            failure_injector=failure_injector,
            memory_budget_mb=memory_budget_mb,
            spill_dir=spill_dir,
        )
        self.history = self._runner.history
        self._tenants: dict[str, _TenantState] = {
            name: _TenantState(TenantSpec(name, k["weight"], k["max_queued"]))
            for name, k in normalized.items()
        }
        self.result_cache: ResultCache | None = (
            ResultCache(hdfs) if result_cache else None
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._dispatched = 0
        self._outstanding = 0
        self._stop = False
        self._started = start
        #: Completed work in dispatch order, for the fair-share replan:
        #: (tenant, weight, job name, order, map durations, reduce
        #: durations, solo task seconds, cache hit).
        self._completed: list[tuple] = []
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="jobservice-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- lifecycle ----------------------------------------------------------
    @property
    def tenants(self) -> dict[str, TenantSpec]:
        return {name: state.spec for name, state in self._tenants.items()}

    def client(self, tenant: str = "default") -> TenantClient:
        """A runner-shaped handle bound to one tenant."""
        return TenantClient(self, tenant)

    def start(self) -> None:
        """Open a paused service: the dispatcher begins draining."""
        with self._cond:
            self._started = True
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every accepted submission has resolved."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            )

    def close(self, wait: bool = True) -> None:
        """Stop the dispatcher and release runner resources.

        ``wait=True`` (default) drains the queue first; ``wait=False``
        cancels everything still queued.
        """
        if wait:
            with self._cond:
                self._started = True
                self._cond.notify_all()
            self.wait()
        with self._cond:
            self._stop = True
            if not wait:
                for state in self._tenants.values():
                    while state.queue:
                        sub = state.queue.popleft()
                        if sub.future._mark_cancelled():
                            self._outstanding -= 1
            self._cond.notify_all()
        self._dispatcher.join(timeout=60)
        self._runner.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=not any(exc))

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        job: JobSpec,
        tenant: str = "default",
        tags: dict[str, Any] | None = None,
    ) -> JobFuture:
        """Queue ``job`` for ``tenant``; returns its :class:`JobFuture`.

        Raises :class:`UnknownTenantError` for tenants outside the
        roster and :class:`QuotaExceededError` when the tenant is at its
        ``max_queued`` admission quota.  The tenant's distributed cache
        is snapshotted *now* — later mutations (e.g. the next k-means
        iteration's centroids) don't leak into this job.  ``tags`` are
        JSON-safe labels stamped into the job's ``job_submit`` and
        ``job_start`` events (e.g. a streaming window index).
        """
        state = self._tenants.get(tenant)
        if state is None:
            raise UnknownTenantError(
                f"unknown tenant {tenant!r}; known tenants: "
                f"{', '.join(sorted(self._tenants))}"
            )
        spec = replace(job, name=f"{tenant}:{job.name}")
        future = JobFuture(tenant, spec.name)
        future._cancel_fn = self._cancel
        with self._cond:
            if self._stop:
                raise RuntimeError("service is closed")
            quota = state.spec.max_queued
            if quota is not None and state.admitted >= quota:
                raise QuotaExceededError(
                    f"tenant {tenant!r} has {state.admitted} jobs admitted, "
                    f"at its max_queued={quota} quota"
                )
            sub = _Submission(
                order=next(self._seq),
                tenant=tenant,
                job=spec,
                snapshot=state.cache.snapshot(),
                future=future,
                tags=dict(tags) if tags else None,
            )
            state.queue.append(sub)
            self._outstanding += 1
            queue_depth = sum(len(s.queue) for s in self._tenants.values())
            self.history.emit(
                EventKind.JOB_SUBMIT,
                spec.name,
                self.history.clock,
                tenant=tenant,
                queue_depth=queue_depth,
                **(sub.tags or {}),
            )
            self._cond.notify_all()
        return future

    def run(self, job: JobSpec, tenant: str = "default") -> JobResult:
        """Submit and block until done (single-tenant convenience)."""
        return self.submit(job, tenant=tenant).result()

    def _cancel(self, future: JobFuture) -> bool:
        with self._cond:
            for state in self._tenants.values():
                for sub in state.queue:
                    if sub.future is future:
                        if not future._mark_cancelled():
                            return False
                        state.queue.remove(sub)
                        self._outstanding -= 1
                        self._cond.notify_all()
                        return True
        return False

    # -- dispatch -----------------------------------------------------------
    def _pick_locked(self) -> _Submission | None:
        """The fair-share choice: min ``(vtime, name)`` tenant, FIFO jobs."""
        pending = [s for s in self._tenants.values() if s.queue]
        if not pending:
            return None
        state = min(pending, key=lambda s: (s.vtime, s.spec.name))
        return state.queue.popleft()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._stop
                    or (self._started and any(s.queue for s in self._tenants.values()))
                )
                if self._stop and not any(s.queue for s in self._tenants.values()):
                    return
                sub = self._pick_locked()
                if sub is None:
                    if self._stop:
                        return
                    continue
                state = self._tenants[sub.tenant]
                state.running += 1
                index = self._dispatched
                self._dispatched += 1
                queued = sum(len(s.queue) for s in self._tenants.values())
            sub.future._mark_running(index)
            self.history.emit(
                EventKind.JOB_DISPATCH,
                sub.job.name,
                self.history.clock,
                tenant=sub.tenant,
                dispatch_index=index,
                queued=queued,
            )
            result: JobResult | None = None
            exc: BaseException | None = None
            cache_hit = False
            try:
                result, cache_hit = self._execute(sub)
            except BaseException as e:  # surfaced through the future
                exc = e
            with self._cond:
                state.running -= 1
                self._outstanding -= 1
                if result is not None:
                    slot_s = self._slot_seconds(result)
                    state.vtime += slot_s / state.spec.weight
                    state.slot_seconds += slot_s
                    state.jobs_done += 1
                    if cache_hit:
                        state.cache_hits += 1
                    self._completed.append((
                        sub.tenant,
                        state.spec.weight,
                        result.job_name,
                        sub.order,
                        tuple(
                            a.duration
                            for a in sorted(
                                (x for x in result.map_plan.assignments
                                 if not x.speculative),
                                key=lambda a: a.task_id,
                            )
                        ),
                        tuple(
                            p.duration
                            for p in sorted(
                                result.reduce_plan, key=lambda p: p.task_id
                            )
                        ),
                        result.timing.map_s + result.timing.reduce_s,
                        cache_hit,
                    ))
                self._cond.notify_all()
            sub.future.cache_hit = cache_hit
            sub.future._resolve(result, exc)

    @staticmethod
    def _slot_seconds(result: JobResult) -> float:
        """Slot-time a job consumed (primary map + reduce durations)."""
        maps = sum(
            a.duration for a in result.map_plan.assignments if not a.speculative
        )
        reduces = sum(p.duration for p in result.reduce_plan)
        return maps + reduces

    # -- execution ----------------------------------------------------------
    def _execute(self, sub: _Submission) -> tuple[JobResult, bool]:
        """Run one submission on the inner runner (dispatcher thread only).

        Installs the tenant's cache snapshot and tag, consults the
        result cache, executes on a miss, and stores cacheable outputs.
        """
        runner = self._runner
        runner.cache = DistributedCache.from_snapshot(sub.snapshot)
        runner.tenant = sub.tenant
        runner.job_tags = sub.tags
        try:
            key = (
                result_cache_key(sub.job, self.hdfs, sub.snapshot)
                if self.result_cache is not None
                else None
            )
            if key is not None and self.result_cache.lookup(key) is not None:
                return self._serve_cache_hit(sub, key), True
            result = runner.run(sub.job)
            if key is not None:
                nbytes = self.result_cache.store(key, sub.job.output_path)
                if nbytes is not None:
                    self.history.emit(
                        EventKind.RESULT_CACHE_STORE,
                        sub.job.name,
                        self.history.clock,
                        tenant=sub.tenant,
                        key=key,
                        nbytes=nbytes,
                    )
            if self.result_cache is not None:
                self.result_cache.misses += 1
            return result, False
        finally:
            runner.tenant = None
            runner.job_tags = None

    def _serve_cache_hit(self, sub: _Submission, key: str) -> JobResult:
        """Answer a submission from the result cache: zero tasks run.

        The hit is charged one job setup (the jobtracker round-trip a
        real Hadoop client still pays) and emits a normal
        ``job_start``/``job_finish`` pair around a ``result_cache_hit``
        event, so histories stay well-formed and the simulated clock
        advances consistently.
        """
        job = sub.job
        if self.hdfs.exists(job.output_path):
            raise FileExistsError(f"output path exists: {job.output_path}")
        assert self.result_cache is not None
        source = self.result_cache.lookup(key)
        self.result_cache.serve(key, job.output_path)
        self.result_cache.hits += 1
        counters = Counters()
        counters.increment(SERVICE_GROUP, RESULT_CACHE_HITS, 1)
        saved_maps = sum(
            len(self.hdfs.chunks(path)) for path in job.input_paths
        )
        timing = JobTiming(self.cost_model.job_setup_s, 0.0, 0.0)
        h = self.history
        t0 = h.clock
        h.emit(
            EventKind.JOB_START,
            job.name,
            t0,
            input_paths=list(job.input_paths),
            output_path=job.output_path,
            n_chunks=0,
            map_only=job.map_only,
            num_reducers=0,
            combiner=job.combiner is not None,
            tenant=sub.tenant,
            **(sub.tags or {}),
        )
        h.emit(
            EventKind.RESULT_CACHE_HIT,
            job.name,
            t0,
            tenant=sub.tenant,
            key=key,
            source_path=source,
            saved_map_tasks=saved_maps,
        )
        h.emit(
            EventKind.JOB_FINISH,
            job.name,
            t0 + timing.total_s,
            timing={
                "setup_s": timing.setup_s,
                "map_s": 0.0,
                "reduce_s": 0.0,
                "retry_penalty_s": 0.0,
                "total_s": timing.total_s,
            },
            counters=counters.to_dict(),
            n_map_tasks=0,
            n_reduce_tasks=0,
            output_path=job.output_path,
        )
        h.advance(t0 + timing.total_s)
        return JobResult(
            job_name=job.name,
            output_path=job.output_path,
            counters=counters,
            timing=timing,
            map_plan=MapPhasePlan(assignments=[], makespan=0.0, waves=0),
            n_map_tasks=0,
            n_reduce_tasks=0,
            reduce_plan=[],
        )

    # -- accounting ---------------------------------------------------------
    def fair_share_plan(self) -> FairSharePlan:
        """Re-plan everything that ran as one task-granular interleave.

        Uses the per-task durations the solo plans produced, interleaved
        over the shared slot pool by stride scheduling — the simulated
        schedule the cluster would have run had all tenants' tasks
        contended for slots concurrently (the backlog model).
        """
        with self._lock:
            completed = list(self._completed)
        jobs = [
            FairShareJob(
                tenant=tenant, weight=weight, name=name, order=order,
                map_durations=maps, reduce_durations=reduces,
            )
            for tenant, weight, name, order, maps, reduces, _, _ in completed
        ]
        return plan_fair_share(jobs, self.cluster, dead_nodes=self.hdfs.dead_nodes)

    def report(self) -> ServiceReport:
        """Per-tenant accounting + the fair-share interleave metrics."""
        plan = self.fair_share_plan()
        with self._lock:
            completed = list(self._completed)
            states = {
                name: (s.spec.weight, s.jobs_done, s.cache_hits, s.slot_seconds)
                for name, s in self._tenants.items()
            }
        serial_s = sum(row[6] for row in completed)
        window = plan.contended_window()
        shares = plan.tenant_shares(window)
        deviations = plan.fairness_deviations(window)
        contended = plan.slot_seconds(window)
        total_weight = sum(w for w, _, _, _ in states.values()) or 1.0
        tenants: dict[str, dict[str, Any]] = {}
        for name, (weight, jobs_done, cache_hits, slot_seconds) in states.items():
            tenants[name] = {
                "weight": weight,
                "weight_share": weight / total_weight,
                "jobs": jobs_done,
                "cache_hits": cache_hits,
                "slot_seconds": slot_seconds,
                "contended_slot_s": contended.get(name, 0.0),
                "share": shares.get(name, 0.0),
                "deviation": deviations.get(name, 0.0),
            }
        return ServiceReport(
            tenants=tenants,
            interleaved_makespan_s=plan.makespan,
            serial_s=serial_s,
            contended_window_s=window,
            plan=plan,
        )
