"""JobTracker scheduling: locality-aware dispatch of tasks to slots.

Implements the behaviour Section III describes: the jobtracker keeps the
data-layout information acquired from the namenode and, when a tasktracker
slot frees up, hands it a map task whose input chunk is **node-local** if
one remains, else **rack-local**, else any remaining task (a **remote**
read).  The scheduler is event-driven over simulated time, which also
yields the map-phase makespan the cost model needs, and supports optional
speculative re-execution of straggler tasks.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.counters import Counters, STANDARD
from repro.mapreduce.failures import MAX_TASK_ATTEMPTS, emit_attempt_failures
from repro.mapreduce.types import Chunk
from repro.observability.events import EventKind, Phase
from repro.observability.history import JobHistory

__all__ = [
    "TaskAssignment",
    "MapPhasePlan",
    "ReduceAssignment",
    "RetryPolicy",
    "NodeBlacklist",
    "plan_map_phase",
    "plan_reduce_phase",
    "emit_map_phase_events",
    "emit_reduce_phase_events",
    "record_locality",
    "Locality",
    "FairShareJob",
    "FairShareTask",
    "FairSharePlan",
    "plan_fair_share",
]


class Locality:
    NODE_LOCAL = "node_local"
    RACK_LOCAL = "rack_local"
    REMOTE = "remote"


@dataclass(frozen=True)
class RetryPolicy:
    """How the jobtracker retries failed task attempts.

    Mirrors Hadoop's knobs: a capped attempt budget per task
    (``mapred.map.max.attempts``), exponential backoff before each
    re-dispatch (charged to the job's retry penalty, like the heartbeat
    round-trips a real jobtracker waits through), and a per-job node
    blacklist threshold (``mapred.max.tracker.failures``) after which a
    node stops receiving dispatches for the job.
    """

    max_attempts: int = MAX_TASK_ATTEMPTS
    backoff_base_s: float = 2.0
    backoff_factor: float = 2.0
    blacklist_after: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1")

    def backoff_s(self, failed_attempt: int) -> float:
        """Simulated wait before re-dispatching after ``failed_attempt``."""
        return self.backoff_base_s * self.backoff_factor ** (failed_attempt - 1)


class NodeBlacklist:
    """Per-job tracker of node failures and blacklist state (thread-safe)."""

    def __init__(self, threshold: int):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._failures: dict[str, int] = {}
        self._blacklisted: set[str] = set()
        self._lock = threading.Lock()

    def record_failure(self, node: str) -> bool:
        """Count one failure on ``node``; True iff this crossed the threshold."""
        with self._lock:
            count = self._failures.get(node, 0) + 1
            self._failures[node] = count
            if count >= self.threshold and node not in self._blacklisted:
                self._blacklisted.add(node)
                return True
            return False

    def is_blacklisted(self, node: str) -> bool:
        with self._lock:
            return node in self._blacklisted

    def nodes(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._blacklisted)

    def failure_count(self, node: str) -> int:
        with self._lock:
            return self._failures.get(node, 0)


@dataclass(frozen=True)
class TaskAssignment:
    """One planned task attempt: which chunk runs where, and when."""

    task_id: str
    chunk: Chunk
    node: str
    locality: str
    start_time: float
    duration: float
    speculative: bool = False

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


@dataclass(frozen=True)
class ReduceAssignment:
    """One planned reduce task: which partition runs where, and when."""

    task_id: str
    node: str
    start_time: float
    duration: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


@dataclass
class MapPhasePlan:
    """The scheduler's output for one job's map phase."""

    assignments: list[TaskAssignment]
    makespan: float
    waves: int

    def locality_counts(self) -> dict[str, int]:
        counts = {Locality.NODE_LOCAL: 0, Locality.RACK_LOCAL: 0, Locality.REMOTE: 0}
        for a in self.assignments:
            if not a.speculative:
                counts[a.locality] += 1
        return counts


def _classify_locality(cluster: ClusterSpec, node: str, chunk: Chunk) -> str:
    if node in chunk.replicas:
        return Locality.NODE_LOCAL
    node_rack = cluster.rack_of(node)
    replica_racks = {cluster.rack_of(r) for r in chunk.replicas if r in {n.name for n in cluster.nodes()}}
    if node_rack in replica_racks:
        return Locality.RACK_LOCAL
    return Locality.REMOTE


def plan_map_phase(
    chunks: Sequence[Chunk],
    cluster: ClusterSpec,
    task_time_fn: Callable[[Chunk, str], float],
    prefer_locality: bool = True,
    speculative: bool = False,
    straggler_factor: float = 1.5,
    dead_nodes: frozenset[str] = frozenset(),
    node_slowdown: Callable[[str], float] | None = None,
) -> MapPhasePlan:
    """Plan the map phase of one job over the cluster's map slots.

    ``task_time_fn(chunk, locality)`` models one attempt's duration (remote
    reads cost more).  ``prefer_locality=False`` disables the data-locality
    preference — the ablation knob for measuring how much locality buys.
    ``node_slowdown(node)`` returns a duration multiplier (>= 1) for tasks
    landing on that node — the chaos engine's straggler model, which is
    also what makes speculative execution actually fire in chaos runs.

    Returns the per-task assignments, the simulated makespan, and the
    number of scheduling *waves* (ceil(tasks / total slots), the quantity
    the paper uses when it reports ~5 waves for the 61-node sampling run).
    """
    workers = [n for n in cluster.tasktrackers() if n.name not in dead_nodes]
    if not workers:
        raise RuntimeError("no alive tasktrackers")
    total_slots = sum(n.map_slots for n in workers)
    if total_slots == 0:
        raise RuntimeError("cluster has zero map slots")

    # Min-heap of (free_time, tiebreak, node_name) — one entry per slot.
    counter = itertools.count()
    slots: list[tuple[float, int, str]] = []
    for node in workers:
        for _ in range(node.map_slots):
            heapq.heappush(slots, (0.0, next(counter), node.name))

    # Largest chunks first so stragglers start early (classic LPT packing;
    # Hadoop approximates this because big files enumerate first).
    remaining: list[tuple[int, Chunk]] = sorted(
        enumerate(chunks), key=lambda ic: -ic[1].nbytes
    )
    assignments: list[TaskAssignment] = []
    makespan = 0.0

    while remaining:
        free_time, _, node_name = heapq.heappop(slots)
        # Pick the task for this slot: node-local > rack-local > any.
        pick = 0
        if prefer_locality:
            node_rack = cluster.rack_of(node_name)
            best_rank = 3
            for i, (_, chunk) in enumerate(remaining):
                if node_name in chunk.replicas:
                    pick, best_rank = i, 0
                    break
                known = {n.name for n in cluster.nodes()}
                replica_racks = {
                    cluster.rack_of(r)
                    for r in chunk.replicas
                    if r in known and r not in dead_nodes
                }
                rank = 1 if node_rack in replica_racks else 2
                if rank < best_rank:
                    pick, best_rank = i, rank
        index, chunk = remaining.pop(pick)
        locality = _classify_locality(cluster, node_name, chunk)
        duration = task_time_fn(chunk, locality)
        if duration < 0:
            raise ValueError("task_time_fn returned a negative duration")
        if node_slowdown is not None:
            duration *= node_slowdown(node_name)
        assignment = TaskAssignment(
            task_id=f"map-{index:04d}",
            chunk=chunk,
            node=node_name,
            locality=locality,
            start_time=free_time,
            duration=duration,
        )
        assignments.append(assignment)
        makespan = max(makespan, assignment.end_time)
        heapq.heappush(slots, (assignment.end_time, next(counter), node_name))

    if speculative and assignments:
        ends = sorted(a.end_time for a in assignments)
        median_end = ends[len(ends) // 2]
        extra: list[TaskAssignment] = []
        for a in assignments:
            if a.end_time > straggler_factor * max(median_end, 1e-9):
                # Duplicate on the earliest-free slot of a different node.
                candidates = [(t, c, n) for (t, c, n) in slots if n != a.node]
                if not candidates:
                    continue
                free_time, _, node_name = min(candidates)
                locality = _classify_locality(cluster, node_name, a.chunk)
                duration = task_time_fn(a.chunk, locality)
                if node_slowdown is not None:
                    duration *= node_slowdown(node_name)
                dup = TaskAssignment(
                    task_id=a.task_id,
                    chunk=a.chunk,
                    node=node_name,
                    locality=locality,
                    start_time=free_time,
                    duration=duration,
                    speculative=True,
                )
                extra.append(dup)
        if extra:
            assignments.extend(extra)
            # Completion of a speculated task = min over its attempts.
            by_task: dict[str, float] = {}
            for a in assignments:
                end = a.end_time
                by_task[a.task_id] = min(by_task.get(a.task_id, float("inf")), end)
            makespan = max(by_task.values())

    waves = -(-len(chunks) // total_slots)  # ceil division
    return MapPhasePlan(assignments, makespan, waves)


def plan_reduce_phase(
    n_reducers: int,
    cluster: ClusterSpec,
    task_time_fn: Callable[[int], float],
    dead_nodes: frozenset[str] = frozenset(),
    node_slowdown: Callable[[str], float] | None = None,
    pinned_nodes: dict[int, str] | None = None,
) -> tuple[list[ReduceAssignment], float]:
    """Plan reduce tasks over reduce slots; returns (placements, makespan).

    Reducers "are spread across the same nodes as the mappers"
    (Section III); placement is round-robin over alive tasktrackers, and
    the makespan is an LPT list-schedule over the reduce slots.  Each
    placement carries its slot-packed start time and duration so the
    job-history layer can materialize per-reducer timelines.

    ``pinned_nodes`` maps a reducer index to the tasktracker that should
    host it (locality-aware placement: the node already holding the
    plurality of that partition's map-output bytes).  A pinned reducer
    takes the earliest-free reduce slot **on that node**; reducers without
    a pin — or whose pin is dead, unknown, or slotless — keep the legacy
    earliest-free-slot-anywhere behaviour, so ``pinned_nodes=None``
    reproduces the old plan exactly.
    """
    workers = [n for n in cluster.tasktrackers() if n.name not in dead_nodes]
    if not workers:
        raise RuntimeError("no alive tasktrackers")
    counter = itertools.count()
    slots: list[tuple[float, int, str]] = []
    slotted_nodes: set[str] = set()
    for node in workers:
        for _ in range(max(node.reduce_slots, 0)):
            heapq.heappush(slots, (0.0, next(counter), node.name))
            slotted_nodes.add(node.name)
    if not slots:
        raise RuntimeError("cluster has zero reduce slots")
    placements: list[ReduceAssignment] = []
    makespan = 0.0
    durations = sorted(
        ((task_time_fn(r), r) for r in range(n_reducers)), reverse=True
    )
    for duration, r in durations:
        pin = pinned_nodes.get(r) if pinned_nodes else None
        if pin is not None and pin not in slotted_nodes:
            pin = None
        if pin is None:
            free_time, _, node_name = heapq.heappop(slots)
        else:
            # Earliest-free slot on the pinned node; stash the rest.
            stash: list[tuple[float, int, str]] = []
            while slots[0][2] != pin:
                stash.append(heapq.heappop(slots))
            free_time, _, node_name = heapq.heappop(slots)
            for entry in stash:
                heapq.heappush(slots, entry)
        if node_slowdown is not None:
            duration *= node_slowdown(node_name)
        placements.append(
            ReduceAssignment(f"reduce-{r:04d}", node_name, free_time, duration)
        )
        end = free_time + duration
        makespan = max(makespan, end)
        heapq.heappush(slots, (end, next(counter), node_name))
    placements.sort(key=lambda p: p.task_id)
    return placements, makespan


def emit_map_phase_events(
    history: JobHistory,
    job_name: str,
    plan: MapPhasePlan,
    t0: float,
    failures_by_task: dict[str, list[tuple]] | None = None,
) -> None:
    """Emit the map phase's task timeline into a job history.

    ``t0`` is the phase start on the history's simulated clock; planned
    start/end times are relative to it.  ``failures_by_task`` maps a task
    id to its failed attempts ``(attempt, node, reason[, kind, backoff])``
    (see :func:`~repro.mapreduce.failures.emit_attempt_failures`); attempts are
    modelled as back-to-back occupations of the task's slot, so a retried
    task finishes ``(attempts - 1) * duration`` later than planned — the
    same quantity the cost model charges as the job's retry penalty.
    """
    failures_by_task = failures_by_task or {}
    primary = sorted(
        (a for a in plan.assignments if not a.speculative),
        key=lambda a: (a.start_time, a.task_id),
    )
    for a in primary:
        history.emit(
            EventKind.TASK_START,
            job_name,
            t0 + a.start_time,
            task=a.task_id,
            node=a.node,
            phase=Phase.MAP,
            locality=a.locality,
            input_bytes=a.chunk.nbytes,
            input_records=a.chunk.n_records,
        )
        failures = failures_by_task.get(a.task_id, [])
        emit_attempt_failures(
            history, job_name, a.task_id, failures,
            t_start=t0 + a.start_time, attempt_duration=a.duration,
        )
        attempts = 1 + len(failures)
        history.emit(
            EventKind.TASK_FINISH,
            job_name,
            t0 + a.start_time + attempts * a.duration,
            task=a.task_id,
            node=a.node,
            phase=Phase.MAP,
            duration_s=a.duration,
            attempts=attempts,
            wasted_s=(attempts - 1) * a.duration,
            locality=a.locality,
        )
    for a in plan.assignments:
        if not a.speculative:
            continue
        original = next(
            (p for p in primary if p.task_id == a.task_id), None
        )
        history.emit(
            EventKind.SPECULATIVE_LAUNCH,
            job_name,
            t0 + a.start_time,
            task=a.task_id,
            node=a.node,
            original_node=original.node if original else None,
            duration_s=a.duration,
        )
        history.emit(
            EventKind.TASK_START,
            job_name,
            t0 + a.start_time,
            task=a.task_id,
            node=a.node,
            phase=Phase.MAP,
            locality=a.locality,
            speculative=True,
        )
        history.emit(
            EventKind.TASK_FINISH,
            job_name,
            t0 + a.end_time,
            task=a.task_id,
            node=a.node,
            phase=Phase.MAP,
            duration_s=a.duration,
            locality=a.locality,
            speculative=True,
        )


def emit_reduce_phase_events(
    history: JobHistory,
    job_name: str,
    placements: Sequence[ReduceAssignment],
    t0: float,
    failures_by_task: dict[str, list[tuple]] | None = None,
    records_by_task: dict[str, int] | None = None,
) -> None:
    """Emit the reduce phase's task timeline (same model as the map side)."""
    failures_by_task = failures_by_task or {}
    records_by_task = records_by_task or {}
    for p in sorted(placements, key=lambda p: (p.start_time, p.task_id)):
        history.emit(
            EventKind.TASK_START,
            job_name,
            t0 + p.start_time,
            task=p.task_id,
            node=p.node,
            phase=Phase.REDUCE,
            input_records=records_by_task.get(p.task_id, 0),
        )
        failures = failures_by_task.get(p.task_id, [])
        emit_attempt_failures(
            history, job_name, p.task_id, failures,
            t_start=t0 + p.start_time, attempt_duration=p.duration,
        )
        attempts = 1 + len(failures)
        history.emit(
            EventKind.TASK_FINISH,
            job_name,
            t0 + p.start_time + attempts * p.duration,
            task=p.task_id,
            node=p.node,
            phase=Phase.REDUCE,
            duration_s=p.duration,
            attempts=attempts,
            wasted_s=(attempts - 1) * p.duration,
        )


# ---------------------------------------------------------------------------
# Weighted fair-share over the shared slot pool (the multi-tenant scheduler).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FairShareJob:
    """One completed job's task demand, as the fair-share planner sees it.

    ``map_durations``/``reduce_durations`` are the per-task simulated
    durations the single-job planners already computed (the service reads
    them off :class:`~repro.mapreduce.runner.JobResult`'s plans), so the
    interleave reuses the exact locality/cost modelling of the solo run.
    ``order`` is the global dispatch index — FIFO tiebreak within a
    tenant.
    """

    tenant: str
    weight: float
    name: str
    order: int
    map_durations: tuple[float, ...]
    reduce_durations: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"job {self.name!r}: weight must be positive")
        if any(d < 0 for d in (*self.map_durations, *self.reduce_durations)):
            raise ValueError(f"job {self.name!r}: negative task duration")


@dataclass(frozen=True)
class FairShareTask:
    """One task occupation on the interleaved multi-tenant timeline."""

    tenant: str
    job: str
    task_id: str
    phase: str
    node: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class FairSharePlan:
    """The interleaved schedule of many tenants' jobs over one slot pool."""

    tasks: list[FairShareTask]
    makespan: float
    weights: dict[str, float]

    def slot_seconds(self, window: float | None = None) -> dict[str, float]:
        """Per-tenant busy slot-seconds, optionally clipped to ``[0, window]``."""
        out = {t: 0.0 for t in self.weights}
        for task in self.tasks:
            end = task.end if window is None else min(task.end, window)
            start = task.start if window is None else min(task.start, window)
            out[task.tenant] += max(0.0, end - start)
        return out

    def contended_window(self) -> float:
        """End of the interval during which *every* tenant still has work.

        Fairness is only meaningful while tenants actually contend: once a
        tenant's last task ends, the survivors legitimately absorb its
        share.  The window is the earliest per-tenant last-task end.
        """
        last_end: dict[str, float] = {}
        for task in self.tasks:
            last_end[task.tenant] = max(last_end.get(task.tenant, 0.0), task.end)
        return min(last_end.values()) if last_end else 0.0

    def tenant_shares(self, window: float | None = None) -> dict[str, float]:
        """Each tenant's fraction of busy slot-seconds in the window.

        ``window=None`` uses :meth:`contended_window`.
        """
        if window is None:
            window = self.contended_window()
        used = self.slot_seconds(window)
        total = sum(used.values())
        if total <= 0:
            return {t: 0.0 for t in used}
        return {t: s / total for t, s in used.items()}

    def fairness_deviations(self, window: float | None = None) -> dict[str, float]:
        """Relative deviation of each tenant's share from its weight share.

        ``0.0`` is perfectly fair; ``+0.2`` means the tenant got 20% more
        slot-seconds than its weight entitles it to.  The acceptance gate
        is ``max(abs(deviation)) <= 0.2`` over the contended window.
        """
        shares = self.tenant_shares(window)
        total_weight = sum(self.weights.values())
        return {
            t: (shares[t] / (w / total_weight)) - 1.0 if w else 0.0
            for t, w in self.weights.items()
        }


def plan_fair_share(
    jobs: Sequence[FairShareJob],
    cluster: ClusterSpec,
    dead_nodes: frozenset[str] = frozenset(),
) -> FairSharePlan:
    """Interleave many tenants' jobs over the cluster's slots, fairly.

    Stride scheduling over *virtual time*: each tenant carries a vtime
    that advances by ``duration / weight`` for every slot-second it
    consumes, and whenever a slot frees the planner hands it to the
    pending tenant with the smallest ``(vtime, name)`` — so a weight-2
    tenant's clock runs at half speed and it receives twice the
    slot-seconds of a weight-1 peer while both have demand (the backlog
    model: all submitted jobs are assumed available from t=0, which is
    exactly the contention benchmark's shape).  Within a tenant, jobs
    drain FIFO by ``order`` and tasks in task-id order.

    Map and reduce slots are disjoint pools, so maps are packed first and
    each job's reduces become eligible only once its map phase ends —
    identical to the single-job planners' phase barrier.  Everything is
    deterministic: ties break on tenant name, job order, then slot index.
    """
    workers = [n for n in cluster.tasktrackers() if n.name not in dead_nodes]
    if not workers:
        raise RuntimeError("no alive tasktrackers")

    vtime: dict[str, float] = {}
    weights: dict[str, float] = {}
    for job in jobs:
        weights.setdefault(job.tenant, job.weight)
        vtime.setdefault(job.tenant, 0.0)
        if weights[job.tenant] != job.weight:
            raise ValueError(
                f"tenant {job.tenant!r} appears with conflicting weights"
            )

    def slot_heap(kind: str) -> list[tuple[float, int, str]]:
        counter = itertools.count()
        heap: list[tuple[float, int, str]] = []
        for node in workers:
            n_slots = node.map_slots if kind == Phase.MAP else node.reduce_slots
            for _ in range(max(n_slots, 0)):
                heapq.heappush(heap, (0.0, next(counter), node.name))
        return heap

    tasks: list[FairShareTask] = []
    makespan = 0.0

    def pick(pending: dict[int, FairShareJob]) -> FairShareJob:
        tenant = min(
            {j.tenant for j in pending.values()}, key=lambda t: (vtime[t], t)
        )
        order = min(o for o, j in pending.items() if j.tenant == tenant)
        return pending[order]

    def assign(job: FairShareJob, phase: str, index: int,
               start: float, duration: float, node: str) -> None:
        nonlocal makespan
        prefix = "map" if phase == Phase.MAP else "reduce"
        tasks.append(
            FairShareTask(
                tenant=job.tenant, job=job.name,
                task_id=f"{prefix}-{index:04d}", phase=phase,
                node=node, start=start, duration=duration,
            )
        )
        vtime[job.tenant] += duration / job.weight
        makespan = max(makespan, start + duration)

    # -- map pass: no preconditions, pack greedily under fair-share ---------
    map_slots = slot_heap(Phase.MAP)
    if any(job.map_durations for job in jobs) and not map_slots:
        raise RuntimeError("cluster has zero map slots")
    next_map = {job.order: 0 for job in jobs}
    pending_maps = {job.order: job for job in jobs if job.map_durations}
    map_done = {job.order: 0.0 for job in jobs}
    counter = itertools.count(len(map_slots))
    while pending_maps:
        free_time, _, node = heapq.heappop(map_slots)
        job = pick(pending_maps)
        index = next_map[job.order]
        duration = job.map_durations[index]
        assign(job, Phase.MAP, index, free_time, duration, node)
        map_done[job.order] = max(map_done[job.order], free_time + duration)
        next_map[job.order] += 1
        if next_map[job.order] >= len(job.map_durations):
            del pending_maps[job.order]
        heapq.heappush(map_slots, (free_time + duration, next(counter), node))

    # -- reduce pass: a job's reduces unlock when its map phase ends --------
    reduce_slots = slot_heap(Phase.REDUCE)
    pending_reduces = {job.order: job for job in jobs if job.reduce_durations}
    if pending_reduces and not reduce_slots:
        raise RuntimeError("cluster has zero reduce slots")
    next_reduce = {job.order: 0 for job in jobs}
    counter = itertools.count(len(reduce_slots))
    while pending_reduces:
        free_time, tiebreak, node = heapq.heappop(reduce_slots)
        eligible = {
            o: j for o, j in pending_reduces.items() if map_done[o] <= free_time
        }
        if not eligible:
            # The slot idles until the next map phase completes.
            wake = min(map_done[o] for o in pending_reduces)
            heapq.heappush(reduce_slots, (wake, tiebreak, node))
            continue
        job = pick(eligible)
        index = next_reduce[job.order]
        duration = job.reduce_durations[index]
        assign(job, Phase.REDUCE, index, free_time, duration, node)
        next_reduce[job.order] += 1
        if next_reduce[job.order] >= len(job.reduce_durations):
            del pending_reduces[job.order]
        heapq.heappush(reduce_slots, (free_time + duration, next(counter), node))

    return FairSharePlan(tasks=tasks, makespan=makespan, weights=weights)


def record_locality(counters: Counters, plan: MapPhasePlan) -> None:
    """Fold a plan's locality outcome into job counters."""
    counts = plan.locality_counts()
    counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.DATA_LOCAL_MAPS, counts[Locality.NODE_LOCAL])
    counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.RACK_LOCAL_MAPS, counts[Locality.RACK_LOCAL])
    counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.REMOTE_MAPS, counts[Locality.REMOTE])
    n_spec = sum(1 for a in plan.assignments if a.speculative)
    counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.SPECULATIVE_TASKS, n_spec)
