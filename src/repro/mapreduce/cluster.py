"""Cluster topology: racks, nodes and task slots.

Mirrors the paper's deployment (Section IV): one node hosts the namenode,
one the jobtracker, and every remaining node runs a datanode plus a
tasktracker with a fixed number of map/reduce slots.  Rack membership
drives both HDFS replica placement and scheduler locality decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Node", "ClusterSpec", "paper_cluster"]


@dataclass(frozen=True)
class Node:
    """A cluster machine.

    ``map_slots``/``reduce_slots`` follow Hadoop's per-tasktracker slot
    model: each active task occupies one slot, so a tasktracker runs
    several tasks simultaneously.
    """

    name: str
    rack: str
    map_slots: int = 2
    reduce_slots: int = 2
    is_datanode: bool = True
    is_tasktracker: bool = True

    def __post_init__(self) -> None:
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ValueError("slot counts must be non-negative")


class ClusterSpec:
    """An immutable description of a simulated Hadoop cluster."""

    def __init__(
        self,
        nodes: Iterable[Node],
        namenode: str | None = None,
        jobtracker: str | None = None,
    ):
        self._nodes: dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        if not self._nodes:
            raise ValueError("a cluster needs at least one node")
        names = list(self._nodes)
        self.namenode = namenode if namenode is not None else names[0]
        self.jobtracker = jobtracker if jobtracker is not None else names[min(1, len(names) - 1)]
        for role, name in (("namenode", self.namenode), ("jobtracker", self.jobtracker)):
            if name not in self._nodes:
                raise ValueError(f"{role} {name!r} is not a cluster node")
        if not self.datanodes():
            raise ValueError("cluster has no datanodes")
        if not self.tasktrackers():
            raise ValueError("cluster has no tasktrackers")

    # -- lookups ------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    def datanodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.is_datanode]

    def tasktrackers(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.is_tasktracker]

    def racks(self) -> dict[str, list[Node]]:
        out: dict[str, list[Node]] = {}
        for node in self._nodes.values():
            out.setdefault(node.rack, []).append(node)
        return out

    def rack_of(self, node_name: str) -> str:
        return self._nodes[node_name].rack

    def total_map_slots(self) -> int:
        return sum(n.map_slots for n in self.tasktrackers())

    def total_reduce_slots(self) -> int:
        return sum(n.reduce_slots for n in self.tasktrackers())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"ClusterSpec(nodes={len(self)}, racks={len(self.racks())}, "
            f"map_slots={self.total_map_slots()}, reduce_slots={self.total_reduce_slots()})"
        )


def paper_cluster(
    n_workers: int = 5,
    map_slots: int = 2,
    reduce_slots: int = 2,
    nodes_per_rack: int = 4,
) -> ClusterSpec:
    """The paper's Parapluie-style deployment.

    One dedicated namenode, one dedicated jobtracker, ``n_workers``
    combined datanode+tasktracker machines (the paper's 7-node k-means
    testbed is ``n_workers=5``; the 61-node sampling run is
    ``n_workers=59``).  Workers are grouped into racks of
    ``nodes_per_rack`` so the rack-aware replica policy has something to
    work with.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker node")
    nodes = [
        Node("namenode", rack="rack0", is_datanode=False, is_tasktracker=False),
        Node("jobtracker", rack="rack0", is_datanode=False, is_tasktracker=False),
    ]
    for i in range(n_workers):
        rack = f"rack{1 + i // nodes_per_rack}"
        nodes.append(
            Node(
                f"worker{i:02d}",
                rack=rack,
                map_slots=map_slots,
                reduce_slots=reduce_slots,
            )
        )
    return ClusterSpec(nodes, namenode="namenode", jobtracker="jobtracker")
