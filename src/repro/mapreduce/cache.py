"""Distributed cache for read-only side data.

Hadoop's distributed cache ships auxiliary files (here: the serialized
R-tree used by DJ-Cluster's neighborhood mappers, or the current k-means
centroids) to every tasktracker before the map phase starts.  Mappers read
cached entries in ``setup``.  The cost model charges the broadcast once per
tasktracker, not per task.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mapreduce.types import estimate_nbytes

__all__ = ["DistributedCache", "FaultyCacheView"]


class DistributedCache:
    """Named read-only artifacts broadcast to all tasktrackers."""

    def __init__(self) -> None:
        self._entries: dict[str, Any] = {}

    def put(self, name: str, value: Any) -> None:
        if name in self._entries:
            raise KeyError(f"cache entry already exists: {name!r}")
        self._entries[name] = value

    def replace(self, name: str, value: Any) -> None:
        """Overwrite an entry (e.g. centroids updated between iterations)."""
        self._entries[name] = value

    def get(self, name: str) -> Any:
        if name not in self._entries:
            raise KeyError(f"no such cache entry: {name!r}")
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def nbytes(self) -> int:
        """Modelled broadcast payload size (for the cost model)."""
        return sum(estimate_nbytes(v) for v in self._entries.values())

    def snapshot(self) -> dict[str, Any]:
        """Shallow copy of all entries, in insertion order.

        Execution backends broadcast this snapshot to worker processes
        once per job (the cost model already charges the broadcast once
        per tasktracker, so the simulated accounting is unchanged).
        """
        return dict(self._entries)

    @classmethod
    def from_snapshot(cls, entries: dict[str, Any]) -> "DistributedCache":
        """Rebuild a cache from a :meth:`snapshot` (worker-side)."""
        cache = cls()
        for name, value in entries.items():
            cache._entries[name] = value
        return cache


class FaultyCacheView:
    """A per-attempt cache facade whose first ``get`` fails.

    Models a tasktracker that could not localize the distributed cache
    (disk full, fetch timeout): the doomed attempt crashes in its mapper's
    ``setup`` with :class:`~repro.mapreduce.failures.CacheLoadFailure`, and
    the retry gets the real cache again.  Read-only protocol only — the
    runner never hands mappers a writable cache.
    """

    def __init__(self, cache: DistributedCache, task_id: str, attempt: int):
        self._cache = cache
        self._task_id = task_id
        self._attempt = attempt

    def get(self, name: str) -> Any:
        from repro.mapreduce.failures import CacheLoadFailure

        raise CacheLoadFailure(self._task_id, self._attempt, entry=name)

    def __contains__(self, name: str) -> bool:
        return name in self._cache

    def __iter__(self) -> Iterator[str]:
        return iter(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    def nbytes(self) -> int:
        return self._cache.nbytes()
