"""Chained MapReduce jobs (Figure 5's pipelined preprocessing pattern).

DJ-Cluster's preprocessing runs two map-only jobs "in pipeline": the
output of the first constitutes the input of the second.  A
:class:`JobPipeline` expresses that chain declaratively: each stage is a
factory producing a :class:`~repro.mapreduce.job.JobSpec` given the input
path it should consume, and the pipeline threads HDFS paths through the
stages, aggregating counters and simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.runner import JobResult, JobRunner
from repro.observability.events import EventKind

__all__ = ["JobPipeline", "PipelineResult"]


@dataclass
class PipelineResult:
    """Aggregate outcome of a pipeline run."""

    stages: list[JobResult]
    counters: Counters
    sim_seconds: float
    output_path: str

    def stage(self, name: str) -> JobResult:
        for result in self.stages:
            if result.job_name == name:
                return result
        raise KeyError(f"no pipeline stage named {name!r}")


class JobPipeline:
    """A linear chain of jobs where stage *i+1* reads stage *i*'s output.

    ``stages`` are callables ``(input_path: str) -> JobSpec``; each stage's
    spec decides its own output path, which the pipeline hands to the next
    stage.  ``name`` labels the pipeline's bracketing events in the job
    history (each stage's job emits its own full event stream).
    """

    def __init__(
        self, stages: Sequence[Callable[[str], JobSpec]], name: str = "pipeline"
    ):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.name = name

    def run(self, runner: JobRunner, input_path: str) -> PipelineResult:
        """Run all stages in order; fails fast on the first job error."""
        counters = Counters()
        results: list[JobResult] = []
        sim_seconds = 0.0
        current = input_path
        runner.history.emit(
            EventKind.PIPELINE_START,
            self.name,
            runner.history.clock,
            n_stages=len(self.stages),
        )
        for stage in self.stages:
            spec = stage(current)
            result = runner.run(spec)
            results.append(result)
            counters.merge(result.counters)
            sim_seconds += result.sim_seconds
            current = result.output_path
        runner.history.emit(
            EventKind.PIPELINE_FINISH,
            self.name,
            runner.history.clock,
            stages=[r.job_name for r in results],
            sim_seconds=sim_seconds,
        )
        return PipelineResult(results, counters, sim_seconds, current)
