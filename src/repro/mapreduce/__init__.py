"""Simulated Hadoop substrate: HDFS, MapReduce runtime, cost model.

The paper runs on Hadoop over the Grid'5000 Parapluie cluster.  This
subpackage is the documented substitution (DESIGN.md §2): an in-process
Hadoop simulator that preserves the behaviours the paper's evaluation
depends on —

* **HDFS** (:mod:`repro.mapreduce.hdfs`): files split into fixed-size
  chunks, rack-aware 3-way replica placement, namenode metadata.
* **Cluster** (:mod:`repro.mapreduce.cluster`): racks, nodes, map/reduce
  slots; the default spec mirrors the paper's Parapluie deployment
  (dedicated namenode + jobtracker nodes, the rest tasktrackers).
* **Jobs** (:mod:`repro.mapreduce.job`): Mapper / Reducer / Combiner /
  Partitioner base classes and the :class:`~repro.mapreduce.job.JobSpec`
  driver description.
* **Scheduling** (:mod:`repro.mapreduce.scheduler`): jobtracker dispatch
  with data-locality preference (node-local > rack-local > remote).
* **Execution** (:mod:`repro.mapreduce.runner`): the job runner — map
  tasks (optionally thread-parallel), combiner, hash-partitioned shuffle
  with sorted key groups, reduce tasks, counters, failure recovery.
* **Cost model** (:mod:`repro.mapreduce.simtime`): converts the executed
  DAG (chunk sizes, locality, shuffle bytes, slot contention) into
  simulated wall-clock seconds so chunk-size and distance-function effects
  (Table III) are measurable and deterministic.
* **Tracing** (:mod:`repro.observability`): every runner owns a
  :class:`~repro.observability.history.JobHistory` that receives typed
  lifecycle events (job/phase/task start+finish, attempt failures,
  speculative launches, shuffle transfers, cache loads) aligned to the
  cost-model clock; export it with ``runner.history.save(path)`` and
  render it with ``python -m repro history <file>``.
"""

from repro.mapreduce.config import Configuration
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import Chunk, RecordPayload, ArrayPayload, record_stream
from repro.mapreduce.cluster import ClusterSpec, Node, paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import (
    Mapper,
    Reducer,
    Partitioner,
    HashPartitioner,
    JobSpec,
    MapContext,
    ReduceContext,
)
from repro.mapreduce.runner import JobRunner, JobResult
from repro.mapreduce.pipeline import JobPipeline
from repro.mapreduce.simtime import CostModel
from repro.mapreduce.failures import FailureInjector, TaskFailure
from repro.mapreduce.cache import DistributedCache
from repro.observability.history import JobHistory, load_history

# NOTE: repro.mapreduce.textio is intentionally not imported here — it
# depends on repro.algorithms (which depends back on this package);
# import it as a submodule: ``from repro.mapreduce import textio``.

__all__ = [
    "Configuration",
    "Counters",
    "Chunk",
    "RecordPayload",
    "ArrayPayload",
    "record_stream",
    "ClusterSpec",
    "Node",
    "paper_cluster",
    "SimulatedHDFS",
    "Mapper",
    "Reducer",
    "Partitioner",
    "HashPartitioner",
    "JobSpec",
    "MapContext",
    "ReduceContext",
    "JobRunner",
    "JobResult",
    "JobPipeline",
    "CostModel",
    "FailureInjector",
    "TaskFailure",
    "DistributedCache",
    "JobHistory",
    "load_history",
]
