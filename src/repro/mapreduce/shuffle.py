"""Shuffle and sort: routing map output to reducers.

The shuffle is "the only communication step in MapReduce" (Section III):
every intermediate pair is routed by the partitioner to one reduce task,
and each reduce task sees its keys in sorted order with all values for a
key grouped together.  This module implements that data movement plus the
byte accounting the cost model charges as network transfer.
"""

from __future__ import annotations

import contextlib
import gc
import operator
from collections import defaultdict
from typing import Any, Iterator, Sequence

import numpy as np

from repro.mapreduce.job import ConstantKeyPartitioner, HashPartitioner, Partitioner
from repro.mapreduce.spill import ShuffleSpiller, SpilledPartition, as_groups, as_pairs
from repro.mapreduce.types import estimate_nbytes

__all__ = [
    "shuffle",
    "group_sorted",
    "ShuffleResult",
    "emit_shuffle_events",
    "emit_shuffle_refetch_events",
]


@contextlib.contextmanager
def _gc_paused() -> Iterator[None]:
    """Suspend the cyclic GC around bulk container construction.

    Building a million short-lived tuples/lists triggers repeated
    generational collections that each traverse the whole (large) heap —
    measured at ~5x the actual construction cost.  Nothing allocated
    here is cyclic, so pausing collection is safe; the previous GC state
    is always restored.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _sort_key(key: Any) -> tuple[str, str, Any]:
    """Total order over heterogeneous keys: numbers first, then type/repr.

    Hadoop sorts by serialized key bytes; for arbitrary Python keys the
    analogous deterministic order is (type name, repr) — except numbers,
    which repr-ordering would sort lexicographically ("10.0" < "2.0").
    All real numbers share one bucket (tagged with a NUL so it sorts
    before every type name) and order by numeric value, matching the
    natural order the homogeneous fast paths produce.  The third tuple
    slot carries the number; for non-numbers it is a constant so tuples
    never compare a number against a string.
    """
    if isinstance(key, (int, float)):
        return ("\x00number", "", key)
    return (type(key).__name__, repr(key), 0)


def _key_array(keys: list[Any]) -> np.ndarray | None:
    """Homogeneous int/float/str keys as a sortable NumPy array, else ``None``.

    The array must reproduce Python's comparison semantics exactly:

    * ``bool`` is excluded (``True`` and ``1`` are the *same* dict key in
      the generic path, but distinct int64 values here);
    * ints beyond int64 overflow and fall back;
    * floats qualify unless any is NaN — ``np.argsort`` sorts NaN to the
      end while Python's ``sorted`` leaves it wherever comparisons stop
      moving it, so NaN streams fall back to the generic path (``-0.0``
      and ``0.0`` are safe: equal, hence grouped, on both paths);
    * mixed ``{int, float}`` falls back — a float64 cast of a large int
      can collide with a neighbouring float that is a *distinct* dict key;
    * strings containing NUL fall back — NumPy's fixed-width unicode
      dtype pads with NUL, so ``"a"`` and ``"a\\x00"`` would collide.
    Otherwise NumPy's codepoint-wise ``<U`` comparison matches Python's
    ``str`` ordering and int64/float64 match int/float ordering.  The
    homogeneity check runs as one C-level ``set(map(type, ...))`` pass,
    not a Python loop — this sits on the million-record shuffle hot path.
    """
    kinds = set(map(type, keys))
    if kinds == {int}:
        try:
            return np.array(keys, dtype=np.int64)
        except OverflowError:
            return None
    if kinds == {float}:
        arr = np.array(keys, dtype=np.float64)
        if np.isnan(arr).any():
            return None
        return arr
    if kinds == {str}:
        if any("\x00" in k for k in keys):
            return None
        return np.array(keys, dtype=np.str_)
    return None


def _group_from_arrays(
    sub_keys: np.ndarray,
    positions: np.ndarray,
    keys: list[Any],
    values: list[Any],
) -> list[tuple[Any, list[Any]]]:
    """Sorted key groups from a key array + positions into flat lists.

    A stable argsort keeps values in arrival order within each key, so
    the output is element-identical to the generic dict-and-sort path.
    """
    if len(positions) == 0:
        return []
    order = np.argsort(sub_keys, kind="stable")
    sorted_keys = sub_keys[order]
    flat = positions[order]
    starts, ends = _group_bounds(sorted_keys)
    # Bulk C-level gathers and slices; a per-record Python loop here is
    # pathological when most keys are unique (a million tiny groups).
    with _gc_paused():
        vals_sorted = list(map(values.__getitem__, flat.tolist()))
        first_keys = list(map(keys.__getitem__, flat[starts].tolist()))
        return [
            (k, vals_sorted[s:e])
            for k, s, e in zip(first_keys, starts.tolist(), ends.tolist())
        ]


def _group_bounds(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start/end index arrays of the equal-key runs in a sorted key array."""
    bounds = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(sorted_keys)]))
    return starts, ends


def _group_sorted_generic(pairs: list[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
    """Reference grouping: dict accumulation + one sort over the keys."""
    grouped: dict[Any, list[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    try:
        ordered = sorted(grouped)  # natural order when keys are comparable
    except TypeError:
        ordered = sorted(grouped, key=_sort_key)
    return [(key, grouped[key]) for key in ordered]


def group_sorted(pairs: list[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
    """Group values by key, keys emitted in sorted order.

    Within one key, values keep their arrival order (Hadoop makes no
    ordering promise for values; arrival order keeps runs deterministic
    because map outputs are concatenated in task order).

    Homogeneous int/float/str key streams take a vectorized stable-argsort
    path; anything else uses the generic dict-and-sort.  Both produce
    identical output (``tests/mapreduce/test_shuffle_fastpath.py``).
    """
    if not pairs:
        return []
    keys = [k for k, _ in pairs]
    arr = _key_array(keys)
    if arr is None:
        return _group_sorted_generic(pairs)
    values = [v for _, v in pairs]
    return _group_from_arrays(arr, np.arange(len(keys), dtype=np.int64), keys, values)


# -- vectorized partitioning -------------------------------------------------

_FNV_OFFSET = np.uint64(2166136261)
_FNV_PRIME = np.uint64(16777619)
_FNV_MASK = np.uint64(0xFFFFFFFF)


def _fnv1a_int_hashes(arr: np.ndarray) -> np.ndarray:
    """Vectorized ``HashPartitioner._stable_hash`` over an int64 array.

    ``repr`` of an int is its decimal digit string and every character is
    ASCII, so the UTF-8 bytes the scalar hash consumes equal the UCS-4
    codepoints of ``str(value)``.  ``astype(str)`` yields a fixed-width
    NUL-padded unicode array; columns are folded into the hash only where
    the codepoint is nonzero (digit strings have no interior NULs).
    """
    digits = arr.astype(np.str_)
    width = digits.dtype.itemsize // 4
    codes = digits.view(np.uint32).reshape(len(arr), width).astype(np.uint64)
    h = np.full(len(arr), _FNV_OFFSET, dtype=np.uint64)
    used = np.flatnonzero((codes != 0).any(axis=0))  # skip all-padding columns
    for j in used:
        col = codes[:, j]
        h = np.where(col != 0, ((h ^ col) * _FNV_PRIME) & _FNV_MASK, h)
    return h


class ShuffleResult:
    """Outcome of a shuffle: per-reducer key groups plus byte accounting.

    Partitions are either in-memory group lists or, after an external
    (spilled) shuffle, :class:`~repro.mapreduce.spill.SpilledPartition`
    handles whose groups stay on disk until a reduce task loads them.
    Metadata queries (:meth:`records_for`, :meth:`groups_for`,
    ``partition_bytes``) never touch disk; :attr:`partitions` and
    :meth:`partition` materialize.
    """

    def __init__(
        self,
        partitions: list[list[tuple[Any, list[Any]]] | SpilledPartition],
        shuffled_bytes: int,
        partition_bytes: list[int] | None = None,
    ):
        self._partitions = partitions
        self.shuffled_bytes = shuffled_bytes
        self.partition_bytes = (
            partition_bytes if partition_bytes is not None else [0] * len(partitions)
        )
        #: Per-run / per-merge facts of the external path (empty when the
        #: shuffle ran in memory); the runner turns these into
        #: ``spill_start`` / ``spill_merge`` history events.
        self.spill_runs: list[dict[str, int]] = []
        self.spill_merges: list[dict[str, int]] = []
        #: Per-partition ``{source node: bytes}`` provenance, recorded by
        #: the metadata-only path — the input of locality-aware reduce
        #: placement and cross-node-only byte charging.  ``None`` when the
        #: shuffle has no provenance (every legacy path).
        self.node_bytes: list[dict[str, int]] | None = None
        #: Pre-aggregation facts of the metadata-only path (``None``
        #: otherwise): envelopes shipped after per-node coalescing, their
        #: modelled bytes, the raw mapper records they replaced, and the
        #: per-task envelope count before coalescing.
        self.preagg: dict[str, int] | None = None

    @property
    def partitions(self) -> list[list[tuple[Any, list[Any]]]]:
        """Every partition's groups, materialized (loads spilled ones)."""
        return [as_groups(p) for p in self._partitions]

    @property
    def spilled(self) -> bool:
        return bool(self.spill_runs)

    @property
    def n_reducers(self) -> int:
        return len(self._partitions)

    def partition(self, r: int) -> list[tuple[Any, list[Any]]]:
        """One partition's groups, materialized."""
        return as_groups(self._partitions[r])

    def raw_partition(self, r: int) -> "list[tuple[Any, list[Any]]] | SpilledPartition":
        """One partition as stored — a spill handle stays a handle, so it
        can cross to a worker process without shipping the data."""
        return self._partitions[r]

    def records_for(self, partition: int) -> int:
        p = self._partitions[partition]
        if isinstance(p, SpilledPartition):
            return p.n_records
        return sum(len(values) for _, values in p)

    def raw_records_for(self, partition: int) -> int:
        """Raw mapper records behind a partition's shipped records.

        Equal to :meth:`records_for` on every legacy path; on the
        metadata-only path each shipped envelope stands in for the many
        mapper records folded into it, and this reports that true count
        (the history layer's per-reducer accounting uses it).
        """
        if self.preagg is None:
            return self.records_for(partition)
        return sum(
            env.records
            for _, values in self._partitions[partition]
            for env in values
        )

    def groups_for(self, partition: int) -> int:
        p = self._partitions[partition]
        if isinstance(p, SpilledPartition):
            return p.n_groups
        return len(p)

    def release(self) -> None:
        """Delete spilled partition files (call once reducers are done)."""
        for p in self._partitions:
            if isinstance(p, SpilledPartition):
                p.delete()


def shuffle(
    map_outputs: Sequence[list[tuple[Any, Any]]],
    partitioner: Partitioner,
    n_reducers: int,
    spiller: ShuffleSpiller | None = None,
    aggregation=None,
    metadata_only: bool = True,
) -> ShuffleResult:
    """Partition, transfer and sort the map outputs.

    ``map_outputs`` is one list of (key, value) pairs per completed map
    task, in task order (entries may be
    :class:`~repro.mapreduce.spill.SpilledMapOutput` handles when a worker
    spilled its output under a memory budget).  Returns sorted, grouped
    input per reduce task and the total modelled bytes crossing the
    network.

    With an ``aggregation`` (a job's declared monoid) and every map
    output value a pre-aggregated
    :class:`~repro.mapreduce.aggregation.AggregateEnvelope`, the
    metadata-only path ships fixed-size envelopes — coalesced to one per
    (source node, partition, key-group) — and records per-node byte
    provenance; ``metadata_only=False`` (or any non-envelope value)
    falls back to the ordinary paths, which move the same envelopes as
    plain objects and produce byte-identical reduce output.

    Known partitioners over homogeneous key streams dispatch to a
    vectorized path (argsort grouping, FNV hashing in NumPy); custom
    partitioners and mixed keys take the per-record generic loop.  With a
    ``spiller`` (memory-budgeted runs), an external merge sort takes over
    once the in-flight buffer exceeds the budget.  All paths produce
    identical :class:`ShuffleResult` contents.
    """
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    if aggregation is not None and metadata_only:
        meta = _shuffle_metadata(map_outputs, partitioner, n_reducers, aggregation)
        if meta is not None:
            return meta
    if spiller is not None:
        external = _shuffle_external(map_outputs, spiller)
        if external is not None:
            return external
    fast = _shuffle_fast(map_outputs, partitioner, n_reducers)
    if fast is not None:
        return fast
    return _shuffle_generic(map_outputs, partitioner, n_reducers)


def _shuffle_metadata(
    map_outputs: Sequence[list[tuple[Any, Any]]],
    partitioner: Partitioner,
    n_reducers: int,
    aggregation,
) -> ShuffleResult | None:
    """Metadata-only shuffle of pre-aggregated envelopes, or ``None``.

    Applies only when *every* map output value is an
    :class:`~repro.mapreduce.aggregation.AggregateEnvelope` (a single
    raw pair anywhere disqualifies the whole shuffle — correctness over
    savings).  Each partition's envelopes are grouped by key exactly as
    the generic path would, then coalesced so one fixed-size envelope
    per (source node, key-group) crosses the network; the coalescing
    replays the canonical per-node fold the reducer applies anyway, so
    reduce output is byte-identical to the fallback paths.  Byte
    accounting charges ``envelope_nbytes`` per shipped envelope and
    records per-node provenance for locality-aware reduce placement.
    """
    from repro.mapreduce.aggregation import AggregateEnvelope, coalesce_by_node

    pairs_per_task: list[list[tuple[Any, Any]]] = []
    for task_output in map_outputs:
        pairs = as_pairs(task_output)
        if not all(isinstance(v, AggregateEnvelope) for _, v in pairs):
            return None
        pairs_per_task.append(pairs)
    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(n_reducers)]
    pre_coalesce = 0
    raw_records = 0
    for pairs in pairs_per_task:
        for key, env in pairs:
            part = partitioner.partition(key, n_reducers)
            if not 0 <= part < n_reducers:
                raise ValueError(
                    f"partitioner returned {part} for {n_reducers} reducers"
                )
            buckets[part].append((key, env))
            pre_coalesce += 1
            raw_records += env.records
    partitions: list[list[tuple[Any, list[Any]]]] = []
    partition_bytes: list[int] = []
    node_bytes: list[dict[str, int]] = []
    n_envelopes = 0
    for bucket in buckets:
        groups = []
        nbytes = 0
        per_node: dict[str, int] = {}
        for key, envs in group_sorted(bucket):
            coalesced = coalesce_by_node(aggregation, envs)
            groups.append((key, coalesced))
            for env in coalesced:
                nbytes += env.nbytes
                per_node[env.node] = per_node.get(env.node, 0) + env.nbytes
                n_envelopes += 1
        partitions.append(groups)
        partition_bytes.append(nbytes)
        node_bytes.append(per_node)
    result = ShuffleResult(partitions, sum(partition_bytes), partition_bytes)
    result.node_bytes = node_bytes
    result.preagg = {
        "envelopes": n_envelopes,
        "envelope_bytes": sum(partition_bytes),
        "pre_coalesce_envelopes": pre_coalesce,
        "raw_records": raw_records,
    }
    return result


def _shuffle_external(
    map_outputs: Sequence[list[tuple[Any, Any]]],
    spiller: ShuffleSpiller,
) -> ShuffleResult | None:
    """Memory-budgeted external merge-sort shuffle, or ``None`` when the
    in-memory paths should run instead.

    Feeds map outputs through the spiller in task order, cutting a stably
    sorted run to disk whenever the buffer exceeds the budget, then k-way
    merges the runs per partition.  Because each run covers a contiguous
    arrival window and both the per-run sort and ``heapq.merge`` are
    stable, equal keys come out in arrival order — the same groups, in the
    same order, as the in-memory paths.

    Returns ``None`` when nothing actually spilled (everything fit in the
    budget) or when the key stream is unsortable *and* no run was cut yet
    — in both cases the ordinary paths handle the original outputs.  If
    keys turn unsortable *after* runs exist, the spilled records are
    reloaded in arrival order and regrouped in memory (correctness over
    budget — mirroring real Hadoop, where unsortable keys are simply a
    job error).
    """
    for task_output in map_outputs:
        spiller.feed(as_pairs(task_output))
        if spiller.disabled and not spiller.runs:
            # Unsortable keys before any run was cut: the original outputs
            # are intact, so skip straight to the in-memory paths.
            return None
    if spiller.disabled:
        pairs = spiller.fallback_pairs()
        return _shuffle_generic([pairs], spiller.partitioner, spiller.n_reducers)
    spiller.finish()
    if not spiller.spilled():
        return None  # everything fit in the budget; no external state
    partitions, merge_events = spiller.merge()
    result = ShuffleResult(
        partitions,
        sum(spiller.partition_bytes),
        list(spiller.partition_bytes),
    )
    result.spill_runs = list(spiller.run_events)
    result.spill_merges = merge_events
    return result


def _shuffle_generic(
    map_outputs: Sequence[list[tuple[Any, Any]]],
    partitioner: Partitioner,
    n_reducers: int,
) -> ShuffleResult:
    """Reference shuffle: one partitioner call + size estimate per record."""
    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(n_reducers)]
    partition_bytes = [0] * n_reducers
    for task_output in map_outputs:
        for key, value in as_pairs(task_output):
            part = partitioner.partition(key, n_reducers)
            if not 0 <= part < n_reducers:
                raise ValueError(
                    f"partitioner returned {part} for {n_reducers} reducers"
                )
            buckets[part].append((key, value))
            partition_bytes[part] += estimate_nbytes(key) + estimate_nbytes(value)
    partitions = [group_sorted(bucket) for bucket in buckets]
    return ShuffleResult(partitions, sum(partition_bytes), partition_bytes)


def _shuffle_fast(
    map_outputs: Sequence[list[tuple[Any, Any]]],
    partitioner: Partitioner,
    n_reducers: int,
) -> ShuffleResult | None:
    """Vectorized shuffle, or ``None`` when inputs don't qualify.

    Applies only to the framework's own partitioners (``type`` check, not
    ``isinstance`` — a subclass may override ``partition``) over key
    streams :func:`_key_array` accepts; ``HashPartitioner`` additionally
    requires int keys so the FNV digit-string hash applies.  Partition
    indices are computed by construction-in-range NumPy ops, byte
    accounting uses exact int64 accumulation, and grouping reuses the
    same stable-argsort kernel as :func:`group_sorted` — so results are
    element-identical to :func:`_shuffle_generic`.
    """
    if type(partitioner) not in (HashPartitioner, ConstantKeyPartitioner):
        return None
    flat: list[tuple[Any, Any]] = []
    for task_output in map_outputs:
        flat.extend(as_pairs(task_output))
    if not flat:
        return _shuffle_generic(map_outputs, partitioner, n_reducers)
    keys = list(map(operator.itemgetter(0), flat))
    arr = _key_array(keys)
    if arr is None:
        return None
    n = len(keys)
    values = list(map(operator.itemgetter(1), flat))
    # One global stable sort serves both routing and grouping: equal keys
    # land in one partition, and a partition's groups restricted from the
    # globally sorted sequence are already in sorted key order with values
    # in arrival order — exactly what group_sorted produces per bucket.
    order = np.argsort(arr, kind="stable")
    sorted_keys = arr[order]
    starts, ends = _group_bounds(sorted_keys)
    if type(partitioner) is HashPartitioner:
        if arr.dtype != np.int64:
            return None  # repr-of-str hashing (quoting, escapes) stays scalar
        group_parts = (
            _fnv1a_int_hashes(sorted_keys[starts]) % np.uint64(n_reducers)
        ).astype(np.int64)
    else:
        group_parts = np.zeros(len(starts), dtype=np.int64)
    if arr.dtype == np.int64:
        key_bytes = np.full(n, 8, dtype=np.int64)  # estimate_nbytes(int) == 8
    else:
        key_bytes = np.fromiter(
            (estimate_nbytes(k) for k in keys), dtype=np.int64, count=n
        )
    if set(map(type, values)) <= {int, float}:
        value_bytes = np.full(n, 8, dtype=np.int64)
    else:
        value_bytes = np.fromiter(
            (estimate_nbytes(v) for v in values), dtype=np.int64, count=n
        )
    group_bytes = np.add.reduceat((key_bytes + value_bytes)[order], starts)
    partition_bytes = [
        int(group_bytes[group_parts == r].sum()) for r in range(n_reducers)
    ]
    with _gc_paused():
        vals_sorted = list(map(values.__getitem__, order.tolist()))
        first_keys = list(map(keys.__getitem__, order[starts].tolist()))
        partitions: list[list[tuple[Any, list[Any]]]] = [
            [] for _ in range(n_reducers)
        ]
        for k, s, e, p in zip(
            first_keys, starts.tolist(), ends.tolist(), group_parts.tolist()
        ):
            partitions[p].append((k, vals_sorted[s:e]))
    return ShuffleResult(partitions, sum(partition_bytes), partition_bytes)


def emit_shuffle_events(history, job_name: str, result: ShuffleResult, ts: float) -> None:
    """Record per-reducer shuffle transfers in a job history.

    One ``shuffle_transfer`` event per reduce partition, stamped at the
    map-phase end (the shuffle overlaps the reduce fetch in the cost
    model), carrying the bytes/records/groups routed to that reducer —
    the inputs of the report layer's shuffle-skew metric.  The history
    object is duck-typed (anything with ``emit``).
    """
    from repro.observability.events import EventKind

    for r in range(result.n_reducers):
        history.emit(
            EventKind.SHUFFLE_TRANSFER,
            job_name,
            ts,
            task=f"reduce-{r:04d}",
            reducer=f"reduce-{r:04d}",
            bytes=result.partition_bytes[r],
            records=result.records_for(r),
            groups=result.groups_for(r),
            # Pre-aggregated partitions ship envelopes that each stand in
            # for many raw mapper records; surface the true count.  Keyed
            # only on the metadata-only path so legacy histories keep
            # their exact shape.
            **(
                {"raw_records": result.raw_records_for(r)}
                if result.preagg is not None
                else {}
            ),
        )


def emit_shuffle_refetch_events(
    history,
    job_name: str,
    refetches: Sequence[tuple[str, int, float, str]],
    ts: float,
) -> None:
    """Record shuffle re-fetches (chaos recovery) in a job history.

    ``refetches`` holds ``(reduce task id, bytes, refetch_s, reason)`` per
    failed-and-retried fetch, as planned by the runner's chaos path; each
    yields one ``shuffle_refetch`` event stamped alongside the original
    transfers, so the report layer can total re-fetched bytes per job.
    """
    from repro.observability.events import EventKind

    for task_id, nbytes, refetch_s, reason in refetches:
        history.emit(
            EventKind.SHUFFLE_REFETCH,
            job_name,
            ts,
            task=task_id,
            bytes=nbytes,
            refetch_s=refetch_s,
            reason=reason,
        )
