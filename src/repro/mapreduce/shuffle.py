"""Shuffle and sort: routing map output to reducers.

The shuffle is "the only communication step in MapReduce" (Section III):
every intermediate pair is routed by the partitioner to one reduce task,
and each reduce task sees its keys in sorted order with all values for a
key grouped together.  This module implements that data movement plus the
byte accounting the cost model charges as network transfer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.mapreduce.job import Partitioner
from repro.mapreduce.types import estimate_nbytes

__all__ = [
    "shuffle",
    "group_sorted",
    "ShuffleResult",
    "emit_shuffle_events",
    "emit_shuffle_refetch_events",
]


def _sort_key(key: Any) -> tuple[str, repr]:
    """Total order over heterogeneous keys: type name first, then repr.

    Hadoop sorts by serialized key bytes; repr-of-key is the analogous
    deterministic order for arbitrary Python keys and keeps numeric keys
    of one type in natural order via a numeric fast path below.
    """
    return (type(key).__name__, repr(key))


def group_sorted(pairs: list[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
    """Group values by key, keys emitted in sorted order.

    Within one key, values keep their arrival order (Hadoop makes no
    ordering promise for values; arrival order keeps runs deterministic
    because map outputs are concatenated in task order).
    """
    grouped: dict[Any, list[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    try:
        ordered = sorted(grouped)  # natural order when keys are comparable
    except TypeError:
        ordered = sorted(grouped, key=_sort_key)
    return [(key, grouped[key]) for key in ordered]


class ShuffleResult:
    """Outcome of a shuffle: per-reducer key groups plus byte accounting."""

    def __init__(
        self,
        partitions: list[list[tuple[Any, list[Any]]]],
        shuffled_bytes: int,
        partition_bytes: list[int] | None = None,
    ):
        self.partitions = partitions
        self.shuffled_bytes = shuffled_bytes
        self.partition_bytes = (
            partition_bytes if partition_bytes is not None else [0] * len(partitions)
        )

    @property
    def n_reducers(self) -> int:
        return len(self.partitions)

    def records_for(self, partition: int) -> int:
        return sum(len(values) for _, values in self.partitions[partition])


def shuffle(
    map_outputs: Sequence[list[tuple[Any, Any]]],
    partitioner: Partitioner,
    n_reducers: int,
) -> ShuffleResult:
    """Partition, transfer and sort the map outputs.

    ``map_outputs`` is one list of (key, value) pairs per completed map
    task, in task order.  Returns sorted, grouped input per reduce task and
    the total modelled bytes crossing the network.
    """
    if n_reducers < 1:
        raise ValueError("n_reducers must be >= 1")
    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(n_reducers)]
    partition_bytes = [0] * n_reducers
    for task_output in map_outputs:
        for key, value in task_output:
            part = partitioner.partition(key, n_reducers)
            if not 0 <= part < n_reducers:
                raise ValueError(
                    f"partitioner returned {part} for {n_reducers} reducers"
                )
            buckets[part].append((key, value))
            partition_bytes[part] += estimate_nbytes(key) + estimate_nbytes(value)
    partitions = [group_sorted(bucket) for bucket in buckets]
    return ShuffleResult(partitions, sum(partition_bytes), partition_bytes)


def emit_shuffle_events(history, job_name: str, result: ShuffleResult, ts: float) -> None:
    """Record per-reducer shuffle transfers in a job history.

    One ``shuffle_transfer`` event per reduce partition, stamped at the
    map-phase end (the shuffle overlaps the reduce fetch in the cost
    model), carrying the bytes/records/groups routed to that reducer —
    the inputs of the report layer's shuffle-skew metric.  The history
    object is duck-typed (anything with ``emit``).
    """
    from repro.observability.events import EventKind

    for r in range(result.n_reducers):
        history.emit(
            EventKind.SHUFFLE_TRANSFER,
            job_name,
            ts,
            task=f"reduce-{r:04d}",
            reducer=f"reduce-{r:04d}",
            bytes=result.partition_bytes[r],
            records=result.records_for(r),
            groups=len(result.partitions[r]),
        )


def emit_shuffle_refetch_events(
    history,
    job_name: str,
    refetches: Sequence[tuple[str, int, float, str]],
    ts: float,
) -> None:
    """Record shuffle re-fetches (chaos recovery) in a job history.

    ``refetches`` holds ``(reduce task id, bytes, refetch_s, reason)`` per
    failed-and-retried fetch, as planned by the runner's chaos path; each
    yields one ``shuffle_refetch`` event stamped alongside the original
    transfers, so the report layer can total re-fetched bytes per job.
    """
    from repro.observability.events import EventKind

    for task_id, nbytes, refetch_s, reason in refetches:
        history.emit(
            EventKind.SHUFFLE_REFETCH,
            job_name,
            ts,
            task=task_id,
            bytes=nbytes,
            refetch_s=refetch_s,
            reason=reason,
        )
