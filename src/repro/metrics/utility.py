"""Utility metrics: what sanitization costs the analyst.

Three complementary views:

* **spatial distortion** — mean/median displacement (metres) between each
  original trace and its sanitized counterpart, matched by (user,
  timestamp);
* **trace volume ratio** — fraction of traces surviving sanitization
  (suppression-style mechanisms pay here);
* **coverage ratio** — fraction of the original's visited grid cells
  still visited after sanitization (how much of the spatial footprint a
  density analysis would retain).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import GeolocatedDataset, TraceArray

__all__ = [
    "spatial_distortion_m",
    "trace_volume_ratio",
    "coverage_ratio",
    "range_query_error",
    "UtilityReport",
    "utility_report",
]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


def _match_by_time(original: TraceArray, sanitized: TraceArray) -> tuple[np.ndarray, np.ndarray]:
    """Indices of traces matched by (user index-in-original, timestamp).

    Only applicable when the sanitizer preserves identities; mechanisms
    that re-pseudonymize (mix zones) are measured by volume/coverage only.
    """
    orig_users = original.user_ids()
    san_users = sanitized.user_ids()
    orig_index = {
        (u, t): i for i, (u, t) in enumerate(zip(orig_users, original.timestamp))
    }
    orig_idx, san_idx = [], []
    for j, (u, t) in enumerate(zip(san_users, sanitized.timestamp)):
        i = orig_index.get((u, t))
        if i is not None:
            orig_idx.append(i)
            san_idx.append(j)
    return np.array(orig_idx, dtype=np.int64), np.array(san_idx, dtype=np.int64)


def spatial_distortion_m(
    original: GeolocatedDataset | TraceArray,
    sanitized: GeolocatedDataset | TraceArray,
) -> tuple[float, float]:
    """(mean, median) displacement in metres over matched traces.

    Returns ``(nan, nan)`` when no traces can be matched.
    """
    orig = original.flat() if isinstance(original, GeolocatedDataset) else original
    san = sanitized.flat() if isinstance(sanitized, GeolocatedDataset) else sanitized
    oi, si = _match_by_time(orig, san)
    if len(oi) == 0:
        return float("nan"), float("nan")
    d = np.asarray(
        haversine_m(orig.latitude[oi], orig.longitude[oi], san.latitude[si], san.longitude[si])
    )
    return float(d.mean()), float(np.median(d))


def trace_volume_ratio(
    original: GeolocatedDataset | TraceArray,
    sanitized: GeolocatedDataset | TraceArray,
) -> float:
    """|sanitized| / |original| (0 when the original is empty)."""
    n_orig = len(original.flat()) if isinstance(original, GeolocatedDataset) else len(original)
    n_san = len(sanitized.flat()) if isinstance(sanitized, GeolocatedDataset) else len(sanitized)
    return n_san / n_orig if n_orig else 0.0


def _visited_cells(array: TraceArray, cell_m: float) -> set[tuple[int, int]]:
    if len(array) == 0:
        return set()
    cell_lat = cell_m / _M_PER_DEG_LAT
    lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
    cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
    cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
    lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
    return set(zip(lat_band.tolist(), lon_band.tolist()))


def coverage_ratio(
    original: GeolocatedDataset | TraceArray,
    sanitized: GeolocatedDataset | TraceArray,
    cell_m: float = 500.0,
) -> float:
    """Fraction of the original's visited cells still visited afterwards."""
    orig = original.flat() if isinstance(original, GeolocatedDataset) else original
    san = sanitized.flat() if isinstance(sanitized, GeolocatedDataset) else sanitized
    orig_cells = _visited_cells(orig, cell_m)
    if not orig_cells:
        return 1.0
    san_cells = _visited_cells(san, cell_m)
    return len(orig_cells & san_cells) / len(orig_cells)


def range_query_error(
    original: GeolocatedDataset | TraceArray,
    sanitized: GeolocatedDataset | TraceArray,
    n_queries: int = 200,
    cell_m: float = 1000.0,
    window_s: float = 3600.0,
    seed: int = 0,
) -> float:
    """Mean relative error of random spatio-temporal count queries.

    The workhorse utility measure for aggregate analyses: sample
    ``n_queries`` occupied (cell, window) buckets of the original, count
    traces in each for both datasets, and average
    ``|count_san - count_orig| / count_orig``.  0 means the sanitized
    release answers density questions perfectly; 1 means all the mass
    moved or vanished.
    """
    orig = original.flat() if isinstance(original, GeolocatedDataset) else original
    san = sanitized.flat() if isinstance(sanitized, GeolocatedDataset) else sanitized
    if len(orig) == 0:
        return 0.0

    def buckets(array: TraceArray) -> dict[tuple[int, int, int], int]:
        cell_lat = cell_m / _M_PER_DEG_LAT
        lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
        cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
        cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
        lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
        window = np.floor_divide(array.timestamp, window_s).astype(np.int64)
        keys, counts = np.unique(
            np.stack([window, lat_band, lon_band], axis=1), axis=0, return_counts=True
        )
        return {tuple(int(v) for v in key): int(c) for key, c in zip(keys, counts)}

    orig_counts = buckets(orig)
    san_counts = buckets(san) if len(san) else {}
    rng = np.random.default_rng(seed)
    keys = list(orig_counts)
    picks = rng.choice(len(keys), size=min(n_queries, len(keys)), replace=False)
    errors = []
    for i in picks:
        key = keys[int(i)]
        expected = orig_counts[key]
        got = san_counts.get(key, 0)
        errors.append(abs(got - expected) / expected)
    return float(np.mean(errors))


@dataclass
class UtilityReport:
    """Bundle of the three utility views for one sanitized release."""

    mean_distortion_m: float
    median_distortion_m: float
    volume_ratio: float
    coverage: float

    def as_row(self) -> dict[str, float]:
        return {
            "mean_distortion_m": self.mean_distortion_m,
            "median_distortion_m": self.median_distortion_m,
            "volume_ratio": self.volume_ratio,
            "coverage": self.coverage,
        }


def utility_report(
    original: GeolocatedDataset | TraceArray,
    sanitized: GeolocatedDataset | TraceArray,
    cell_m: float = 500.0,
) -> UtilityReport:
    """Compute all utility metrics in one call."""
    mean_d, median_d = spatial_distortion_m(original, sanitized)
    return UtilityReport(
        mean_distortion_m=mean_d,
        median_distortion_m=median_d,
        volume_ratio=trace_volume_ratio(original, sanitized),
        coverage=coverage_ratio(original, sanitized, cell_m),
    )
