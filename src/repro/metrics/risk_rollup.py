"""Re-identification risk as a MapReduce rollup over bucket occupancy.

:func:`repro.metrics.privacy.window_reidentification_risk` is a
driver-side pass over the whole release: bin every trace into a
(time window, cell) bucket, deduplicate (bucket, user) rows, then score
users that land in singleton buckets.  At streaming scale the release
lives in HDFS chunks, so this module re-expresses the same score as a
MapReduce job:

* :class:`RiskBucketMapper` vectorizes the binning per chunk (the exact
  arithmetic of ``window_reidentification_risk``, pinned by the
  equivalence tests) and emits one record per distinct
  ``(window, lat_band, lon_band, user)`` row in its chunk;
* the job's reduce is declared as a
  :class:`~repro.mapreduce.aggregation.CountAggregation`, so a
  pre-agg-enabled runner ships one fixed-size envelope per (node, key)
  instead of one record per (chunk, key) — the reduce output's *keys*
  are the corpus-wide distinct (bucket, user) rows (the values only say
  how many chunks saw the row and are discarded);
* :func:`window_risk_mapreduce` turns the output rows back into a
  :class:`~repro.metrics.privacy.WindowRisk`, bit-identical to the
  driver-side score because both operate on the same deduplicated row
  set with the same integer/NumPy arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.mapreduce.aggregation import CountAggregation, CountSumReducer
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper
from repro.mapreduce.runner import JobResult, JobRunner
from repro.mapreduce.types import Chunk
from repro.metrics.privacy import WindowRisk
from repro.observability.events import EventKind

__all__ = [
    "RiskBucketMapper",
    "window_risk_mapreduce",
    "risk_from_rows",
]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


class RiskBucketMapper(Mapper):
    """Distinct (window, cell, user) rows of one chunk (vectorized).

    Uses the exact binning arithmetic of
    :func:`repro.metrics.privacy.window_reidentification_risk` — same
    band-centre cosine, same ``floor`` / ``floor_divide`` casts — so the
    union of all chunks' rows equals the driver-side row set.  Conf keys:
    ``risk.cell_m`` and ``risk.window_s``.
    """

    def run(self, chunk: Chunk, ctx) -> None:
        cell_m = ctx.conf.get_float("risk.cell_m")
        window_s = ctx.conf.get_float("risk.window_s")
        array = chunk.trace_array()
        if len(array) == 0:
            return
        cell_lat = cell_m / _M_PER_DEG_LAT
        lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
        cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
        cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
        lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
        window = np.floor_divide(array.timestamp, window_s).astype(np.int64)
        rows = np.stack(
            [window, lat_band, lon_band, array.user_index.astype(np.int64)], axis=1
        )
        for w, la, lo, ui in np.unique(rows, axis=0).tolist():
            ctx.emit(
                (int(w), int(la), int(lo), array.users[ui]), 1, nbytes=40
            )


def risk_from_rows(rows: "list[tuple[int, int, int, str]]") -> WindowRisk:
    """Score a deduplicated (window, lat_band, lon_band, user) row set.

    The same tail as :func:`window_reidentification_risk` once the rows
    are unique: bucket populations are distinct-user counts, exposed
    users occupy a singleton bucket.
    """
    if not rows:
        return WindowRisk(0, 0, 0.0, 0, 0.0)
    buckets = np.array([r[:3] for r in rows], dtype=np.int64)
    users = [r[3] for r in rows]
    _, bucket_ids, counts = np.unique(
        buckets, axis=0, return_inverse=True, return_counts=True
    )
    sizes = counts[bucket_ids]
    n_users = len(set(users))
    exposed = len({u for u, s in zip(users, sizes.tolist()) if s == 1})
    return WindowRisk(
        n_users=n_users,
        exposed_users=exposed,
        risk=exposed / n_users,
        min_anonymity=int(counts.min()),
        median_anonymity=float(np.median(counts)),
    )


def window_risk_mapreduce(
    runner: JobRunner,
    input_path: str,
    output_path: str,
    cell_m: float = 500.0,
    window_s: float = 3600.0,
    name: str = "risk-rollup",
    num_reducers: int = 2,
    history_path: "str | None" = None,
) -> "tuple[WindowRisk, JobResult]":
    """Compute :class:`WindowRisk` for a release as a MapReduce rollup.

    The job's reduce is a declared :class:`CountAggregation`: its only
    role is deduplicating (bucket, user) rows across chunks, so on a
    pre-agg-enabled runner the shuffle moves one fixed-size envelope per
    (node, row) instead of one record per (chunk, row).  Returns the
    risk score plus the underlying :class:`JobResult`; the score is
    bit-identical to driver-side
    :func:`~repro.metrics.privacy.window_reidentification_risk` on the
    same release (the streaming equivalence tests pin this down).
    """
    conf = Configuration({"risk.cell_m": cell_m, "risk.window_s": window_s})
    spec = JobSpec(
        name=name,
        mapper=RiskBucketMapper,
        reducer=CountSumReducer,
        aggregation=CountAggregation,
        input_paths=[input_path],
        output_path=output_path,
        num_reducers=num_reducers,
        conf=conf,
        map_cost_factor=0.4,  # one unique() pass per chunk
    )
    result = runner.run(spec)
    rows = [key for key, _count in runner.hdfs.read_records(output_path)]
    risk = risk_from_rows(rows)
    runner.history.emit(
        EventKind.DRIVER_ANNOTATION,
        result.job_name,
        runner.history.clock,
        driver="risk-rollup",
        rows=len(rows),
        risk=risk.risk,
        min_anonymity=risk.min_anonymity,
    )
    if history_path is not None:
        runner.history.save(history_path)
    return risk, result
