"""Predictability of mobility (Song et al. 2010, cited in Section II).

"According to some recent work, our movements are easily predictable by
nature" — the paper cites Song, Qu, Blumm & Barabási, *Limits of
predictability in human mobility*.  This module implements that
analysis over a POI-visit sequence:

* ``random_entropy`` — ``log2(N)`` over the N distinct visited places;
* ``temporal_uncorrelated_entropy`` — Shannon entropy of the visit
  frequency distribution;
* ``real_entropy`` — the Lempel–Ziv estimator of the true entropy rate,
  which accounts for the order of visits;
* ``max_predictability`` — the Fano-bound Π_max: the highest achievable
  accuracy of *any* next-place predictor given an entropy rate.

These quantify the privacy risk independent of any concrete attack: a
high Π_max means the individual's future is exposed by their history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "random_entropy",
    "temporal_uncorrelated_entropy",
    "real_entropy",
    "max_predictability",
    "PredictabilityReport",
    "predictability_report",
]


def _as_sequence(visits) -> np.ndarray:
    seq = np.asarray(visits)
    if seq.ndim != 1:
        raise ValueError("visit sequence must be one-dimensional")
    return seq


def random_entropy(visits) -> float:
    """``log2`` of the number of distinct visited places (bits)."""
    seq = _as_sequence(visits)
    if len(seq) == 0:
        return 0.0
    return math.log2(len(np.unique(seq)))


def temporal_uncorrelated_entropy(visits) -> float:
    """Shannon entropy of the visit histogram (bits)."""
    seq = _as_sequence(visits)
    if len(seq) == 0:
        return 0.0
    _, counts = np.unique(seq, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def real_entropy(visits) -> float:
    """Lempel–Ziv estimate of the entropy rate (bits per visit).

    Uses the Kontoyiannis et al. estimator:
    ``S = (n * log2(n)) / sum(Lambda_i)`` where ``Lambda_i`` is the
    length of the shortest substring starting at ``i`` that never
    appeared in ``visits[:i]`` (n must be >= 2; shorter sequences return
    0).  The estimator converges to the true entropy rate for stationary
    ergodic sources and always satisfies ``real <= uncorrelated``
    asymptotically.
    """
    seq = list(_as_sequence(visits))
    n = len(seq)
    if n < 2:
        return 0.0
    lambdas = []
    for i in range(n):
        # Shortest prefix of seq[i:] not seen in seq[:i].
        max_sub = 0
        history = seq[:i]
        for length in range(1, n - i + 1):
            sub = seq[i : i + length]
            found = any(
                history[j : j + length] == sub for j in range(max(0, i - length + 1))
            )
            if found:
                max_sub = length
            else:
                break
        lambdas.append(max_sub + 1)
    return float(n * math.log2(n) / sum(lambdas))


def max_predictability(entropy_bits: float, n_states: int, tol: float = 1e-9) -> float:
    """Π_max from Fano's inequality: solve
    ``S = H(Π) + (1 - Π) * log2(N - 1)`` for Π by bisection.

    Returns 1.0 when the entropy is (near) zero and ``1/N`` when the
    entropy saturates at ``log2(N)``.
    """
    if n_states < 1:
        raise ValueError("n_states must be >= 1")
    if n_states == 1:
        return 1.0
    s_max = math.log2(n_states)
    entropy = min(max(entropy_bits, 0.0), s_max)

    def fano(p: float) -> float:
        h = 0.0
        if 0.0 < p < 1.0:
            h = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
        return h + (1 - p) * math.log2(n_states - 1)

    # fano(p) decreases from log2(N-1)... over [1/N, 1]; bisect.
    lo, hi = 1.0 / n_states, 1.0
    if entropy >= fano(lo):
        return lo
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if fano(mid) > entropy:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass
class PredictabilityReport:
    """The Song-et-al. triple for one individual's visit sequence."""

    n_visits: int
    n_states: int
    s_rand: float
    s_unc: float
    s_real: float
    pi_max: float

    def as_row(self) -> dict[str, float]:
        return {
            "n_visits": float(self.n_visits),
            "n_states": float(self.n_states),
            "s_rand": self.s_rand,
            "s_unc": self.s_unc,
            "s_real": self.s_real,
            "pi_max": self.pi_max,
        }


def predictability_report(visits) -> PredictabilityReport:
    """Compute all predictability quantities for a visit sequence."""
    seq = _as_sequence(visits)
    n_states = int(len(np.unique(seq))) if len(seq) else 0
    s_real = real_entropy(seq)
    return PredictabilityReport(
        n_visits=int(len(seq)),
        n_states=n_states,
        s_rand=random_entropy(seq),
        s_unc=temporal_uncorrelated_entropy(seq),
        s_real=s_real,
        pi_max=max_predictability(s_real, max(n_states, 1)),
    )
