"""Privacy and utility measurement.

GEPETO's purpose is evaluating "the resulting trade-off between privacy
and utility" (Abstract).  Utility metrics compare a sanitized dataset to
the original; privacy metrics score how well inference attacks still work
after sanitization.
"""

from repro.metrics.utility import (
    spatial_distortion_m,
    trace_volume_ratio,
    coverage_ratio,
    range_query_error,
    UtilityReport,
    utility_report,
)
from repro.metrics.predictability import (
    PredictabilityReport,
    max_predictability,
    predictability_report,
    random_entropy,
    real_entropy,
    temporal_uncorrelated_entropy,
)
from repro.metrics.privacy import (
    poi_recovery,
    PoiRecoveryReport,
    anonymity_set_sizes,
    mixzone_anonymity_sets,
    PrivacyReport,
    privacy_report,
)

__all__ = [
    "spatial_distortion_m",
    "trace_volume_ratio",
    "coverage_ratio",
    "range_query_error",
    "UtilityReport",
    "utility_report",
    "poi_recovery",
    "PoiRecoveryReport",
    "anonymity_set_sizes",
    "mixzone_anonymity_sets",
    "PrivacyReport",
    "privacy_report",
    "PredictabilityReport",
    "max_predictability",
    "predictability_report",
    "random_entropy",
    "real_entropy",
    "temporal_uncorrelated_entropy",
]
