"""Privacy metrics: how well attacks still work after sanitization.

* :func:`poi_recovery` — precision/recall of POI extraction against the
  synthetic generator's ground truth (a recovered POI counts when it
  falls within a match radius of a true one);
* :func:`anonymity_set_sizes` — per (time window, cell) count of distinct
  users, the quantity spatial cloaking guarantees a floor on;
* :func:`mixzone_anonymity_sets` — per-zone count of users traversing it
  per window (the mixing an observer must break);
* :func:`privacy_report` — the attack-oriented bundle: POI recovery plus
  de-anonymization success rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.attacks.poi import PointOfInterestEstimate
from repro.geo.distance import haversine_m
from repro.geo.synthetic import KM_PER_DEG_LAT, PointOfInterest
from repro.geo.trace import GeolocatedDataset, TraceArray
from repro.sanitization.mixzones import MixZone

__all__ = [
    "poi_recovery",
    "PoiRecoveryReport",
    "division_warnings",
    "reset_division_warnings",
    "anonymity_set_sizes",
    "mixzone_anonymity_sets",
    "home_work_anonymity",
    "PrivacyReport",
    "privacy_report",
    "WindowRisk",
    "window_reidentification_risk",
]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0

# Count of ratio computations whose denominator was empty (e.g. POI
# recovery scored with no extracted or no true POIs).  Such ratios come
# back 0.0 instead of raising — the same convention as
# ``DeanonymizationResult.success_rate`` — but the degenerate input is
# worth surfacing, so callers (and the bench gates) can check this
# counter after a run.
_division_warnings = 0


def division_warnings() -> int:
    """Number of guarded zero-denominator ratios since the last reset."""
    return _division_warnings


def reset_division_warnings() -> None:
    """Reset the zero-denominator warning counter (test/bench hygiene)."""
    global _division_warnings
    _division_warnings = 0


def _safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, or 0.0 (counted) on an empty denominator."""
    global _division_warnings
    if not denominator:
        _division_warnings += 1
        return 0.0
    return numerator / denominator


@dataclass
class PoiRecoveryReport:
    """Outcome of scoring extracted POIs against ground truth."""

    n_true: int
    n_extracted: int
    n_matched: int
    precision: float
    recall: float
    mean_match_error_m: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def poi_recovery(
    extracted: list[PointOfInterestEstimate],
    ground_truth: list[PointOfInterest],
    match_radius_m: float = 150.0,
) -> PoiRecoveryReport:
    """Greedy one-to-one matching of extracted POIs to true POIs.

    Precision = matched / extracted; recall = matched / true.  A lower
    recovery after sanitization means the mechanism bought privacy.
    """
    if not extracted or not ground_truth:
        return PoiRecoveryReport(
            n_true=len(ground_truth),
            n_extracted=len(extracted),
            n_matched=0,
            precision=_safe_ratio(0, len(extracted)),
            recall=_safe_ratio(0, len(ground_truth)),
            mean_match_error_m=float("nan"),
        )
    ex = np.array([p.coordinate for p in extracted])
    gt = np.array([(p.latitude, p.longitude) for p in ground_truth])
    d = np.atleast_2d(
        haversine_m(ex[:, None, 0], ex[:, None, 1], gt[None, :, 0], gt[None, :, 1])
    )
    matched_errors: list[float] = []
    used_ex: set[int] = set()
    used_gt: set[int] = set()
    for flat in np.argsort(d, axis=None):
        i, j = np.unravel_index(flat, d.shape)
        if d[i, j] > match_radius_m:
            break
        if i in used_ex or j in used_gt:
            continue
        used_ex.add(int(i))
        used_gt.add(int(j))
        matched_errors.append(float(d[i, j]))
    n_matched = len(matched_errors)
    return PoiRecoveryReport(
        n_true=len(ground_truth),
        n_extracted=len(extracted),
        n_matched=n_matched,
        precision=_safe_ratio(n_matched, len(extracted)),
        recall=_safe_ratio(n_matched, len(ground_truth)),
        mean_match_error_m=float(np.mean(matched_errors)) if matched_errors else float("nan"),
    )


def anonymity_set_sizes(
    dataset: GeolocatedDataset | TraceArray,
    cell_m: float = 500.0,
    window_s: float = 3600.0,
) -> np.ndarray:
    """Distinct-user count of every occupied (window, cell) bucket.

    The distribution's minimum is the k-anonymity level the release
    actually achieves at that granularity.
    """
    array = dataset.flat() if isinstance(dataset, GeolocatedDataset) else dataset
    if len(array) == 0:
        return np.empty(0, dtype=np.int64)
    cell_lat = cell_m / _M_PER_DEG_LAT
    lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
    cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
    cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
    lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
    window = np.floor_divide(array.timestamp, window_s).astype(np.int64)
    buckets = np.stack([window, lat_band, lon_band, array.user_index.astype(np.int64)], axis=1)
    uniq = np.unique(buckets, axis=0)
    _, counts = np.unique(uniq[:, :3], axis=0, return_counts=True)
    return np.sort(counts)


@dataclass(frozen=True)
class WindowRisk:
    """Re-identification exposure of one release (or stream window).

    ``exposed_users`` counts users who occupy at least one singleton
    (time window, cell) bucket — an observer with cell-level side
    knowledge pins such a user down uniquely, the same quasi-identifier
    logic as :func:`home_work_anonymity`.  ``risk`` is the exposed
    fraction; ``min_anonymity`` is the k-anonymity level the release
    actually achieves (0 when the release is empty).
    """

    n_users: int
    exposed_users: int
    risk: float
    min_anonymity: int
    median_anonymity: float

    def to_doc(self) -> dict:
        return {
            "n_users": self.n_users,
            "exposed_users": self.exposed_users,
            "risk": round(self.risk, 9),
            "min_anonymity": self.min_anonymity,
            "median_anonymity": self.median_anonymity,
        }


def window_reidentification_risk(
    dataset: GeolocatedDataset | TraceArray,
    cell_m: float = 500.0,
    window_s: float = 3600.0,
) -> WindowRisk:
    """Deterministic per-release re-identification risk score.

    Uses the same (time window, cell) binning as
    :func:`anonymity_set_sizes` but keeps track of *which* users land in
    singleton buckets, so the score is a user-level exposure fraction
    rather than a bucket-level distribution.  Pure NumPy over sorted
    unique rows — byte-stable across runs and backends, which is what
    lets the streaming layer treat it as part of its equivalence
    signature.
    """
    array = dataset.flat() if isinstance(dataset, GeolocatedDataset) else dataset
    if len(array) == 0:
        return WindowRisk(0, 0, 0.0, 0, 0.0)
    cell_lat = cell_m / _M_PER_DEG_LAT
    lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
    cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
    cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
    lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
    window = np.floor_divide(array.timestamp, window_s).astype(np.int64)
    rows = np.stack(
        [window, lat_band, lon_band, array.user_index.astype(np.int64)], axis=1
    )
    uniq = np.unique(rows, axis=0)  # one row per (bucket, user)
    _, bucket_ids, counts = np.unique(
        uniq[:, :3], axis=0, return_inverse=True, return_counts=True
    )
    sizes = counts[bucket_ids]  # per (bucket, user) row: its bucket population
    n_users = int(len(np.unique(uniq[:, 3])))
    exposed = int(len(np.unique(uniq[sizes == 1, 3])))
    return WindowRisk(
        n_users=n_users,
        exposed_users=exposed,
        risk=exposed / n_users,
        min_anonymity=int(counts.min()),
        median_anonymity=float(np.median(counts)),
    )


def mixzone_anonymity_sets(
    dataset: GeolocatedDataset | TraceArray,
    zones: list[MixZone],
    window_s: float = 3600.0,
) -> dict[int, np.ndarray]:
    """Per-zone distribution of distinct users present per time window.

    Measured on the *original* dataset: it quantifies how much mixing
    each zone would provide if deployed.
    """
    array = dataset.flat() if isinstance(dataset, GeolocatedDataset) else dataset
    out: dict[int, np.ndarray] = {}
    if len(array) == 0:
        return {i: np.empty(0, dtype=np.int64) for i in range(len(zones))}
    windows = np.floor_divide(array.timestamp, window_s).astype(np.int64)
    for zi, zone in enumerate(zones):
        inside = zone.contains(array.latitude, array.longitude)
        if not inside.any():
            out[zi] = np.empty(0, dtype=np.int64)
            continue
        pairs = np.stack(
            [windows[inside], array.user_index[inside].astype(np.int64)], axis=1
        )
        uniq = np.unique(pairs, axis=0)
        _, counts = np.unique(uniq[:, 0], return_counts=True)
        out[zi] = np.sort(counts)
    return out


def home_work_anonymity(
    pairs: dict[str, tuple[tuple[float, float], tuple[float, float]]],
    cell_m: float = 1000.0,
) -> dict[str, int]:
    """Anonymity set size of each user's (home, work) location pair.

    Golle & Partridge ("On the anonymity of home/work location pairs",
    cited in Section II): even coarse home and work locations form a
    quasi-identifier — at US-census granularity most pairs are unique.
    ``pairs`` maps each user to ((home_lat, home_lon), (work_lat,
    work_lon)); both locations are rounded to ``cell_m`` cells and the
    returned value is, per user, how many users share their exact
    (home cell, work cell) pair.  1 means uniquely identifiable.
    """
    if cell_m <= 0:
        raise ValueError("cell_m must be positive")
    cell_lat = cell_m / _M_PER_DEG_LAT

    def cell(lat: float, lon: float) -> tuple[int, int]:
        lat_band = math.floor(lat / cell_lat)
        cos_band = max(math.cos(math.radians((lat_band + 0.5) * cell_lat)), 1e-9)
        cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
        return lat_band, math.floor(lon / cell_lon)

    signature = {
        user: (cell(*home), cell(*work)) for user, (home, work) in pairs.items()
    }
    counts: dict[tuple, int] = {}
    for sig in signature.values():
        counts[sig] = counts.get(sig, 0) + 1
    return {user: counts[sig] for user, sig in signature.items()}


@dataclass
class PrivacyReport:
    """Attack-oriented privacy summary for one sanitized release."""

    poi: PoiRecoveryReport
    deanonymization_rate: float = float("nan")
    min_anonymity_set: int = 0

    def as_row(self) -> dict[str, float]:
        return {
            "poi_precision": self.poi.precision,
            "poi_recall": self.poi.recall,
            "poi_f1": self.poi.f1,
            "deanonymization_rate": self.deanonymization_rate,
            "min_anonymity_set": float(self.min_anonymity_set),
        }


def privacy_report(
    extracted: list[PointOfInterestEstimate],
    ground_truth: list[PointOfInterest],
    deanonymization_rate: float = float("nan"),
    anonymity_sets: np.ndarray | None = None,
    match_radius_m: float = 150.0,
) -> PrivacyReport:
    """Bundle POI recovery with optional linking/anonymity measurements."""
    poi = poi_recovery(extracted, ground_truth, match_radius_m)
    min_set = int(anonymity_sets.min()) if anonymity_sets is not None and len(anonymity_sets) else 0
    return PrivacyReport(poi=poi, deanonymization_rate=deanonymization_rate, min_anonymity_set=min_set)
