"""Simulated PLT point streams: feeds, micro-batches, feed chaos.

A :class:`StreamSource` turns a frozen mobility corpus into the stream a
live deployment would see: each user is one **feed** emitting PLT points
on the simtime clock, cut into one micro-batch per fixed event-time
window.  The cut is pure NumPy over the (user, time)-sorted corpus, so
the same corpus and window size always yield the same batches.

Feed chaos rides on :class:`~repro.mapreduce.failures.ChaosSchedule`:
per batch, ``batch_lost`` drops the delivery entirely, ``batch_late``
postpones it past its window's watermark (it arrives during the *next*
window), and ``batch_duplicated`` delivers it twice.  Every decision is
a counter-hash of ``(seed, kind, feed, window)`` — independent of
delivery order, identical between a streaming run and its batch replay,
which is what keeps the streaming equivalence invariant provable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.trace import GeolocatedDataset, TraceArray
from repro.mapreduce.failures import ChaosSchedule

__all__ = ["FeedBatch", "StreamSource"]


@dataclass(frozen=True)
class FeedBatch:
    """One feed's points for one event-time window, as delivered.

    ``window`` is the event-time window the points belong to;
    ``arrival_window`` is the window during which the batch reaches the
    batcher (``window`` on time, ``window + 1`` when late).
    """

    feed: str
    window: int
    arrival_window: int
    points: TraceArray
    late: bool = False
    duplicate: bool = False

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class StreamSource:
    """Deterministic micro-batch view of a corpus, one feed per user.

    ``array`` may be a :class:`TraceArray` or a
    :class:`GeolocatedDataset`; it is canonically (user, time)-sorted
    before cutting, so construction order never leaks into batches.
    Window ``w`` covers event time ``[base + w*window_s,
    base + (w+1)*window_s)`` where ``base`` is the corpus' first window
    boundary on the epoch grid (the same alignment the sampling driver
    uses).
    """

    array: "TraceArray | GeolocatedDataset"
    window_s: float
    chaos: ChaosSchedule | None = None
    name: str = "stream"

    #: Filled during __post_init__: delivery-ordered batches and counters.
    batches: list[FeedBatch] = field(init=False, default_factory=list)
    lost_by_window: dict[int, int] = field(init=False, default_factory=dict)
    total_points: int = field(init=False, default=0)
    lost_points: int = field(init=False, default=0)
    n_feeds: int = field(init=False, default=0)
    n_event_windows: int = field(init=False, default=0)
    n_windows: int = field(init=False, default=0)
    base_window: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        array = (
            self.array.flat()
            if isinstance(self.array, GeolocatedDataset)
            else self.array
        )
        ordered = array.sort_by_time().compact()
        object.__setattr__(self, "array", ordered)
        n = len(ordered)
        self.total_points = n
        if n == 0:
            return
        ui = ordered.user_index
        ts = ordered.timestamp
        base = int(np.floor(float(ts.min()) / self.window_s))
        self.base_window = base
        win = np.floor_divide(ts, self.window_s).astype(np.int64) - base
        self.n_event_windows = int(win.max()) + 1
        self.n_feeds = len(ordered.users)
        # One batch per contiguous (user, window) run of the sorted corpus.
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = (ui[1:] != ui[:-1]) | (win[1:] != win[:-1])
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        chaos = self.chaos
        delivered: list[FeedBatch] = []
        for start, end in zip(starts, ends):
            feed = ordered.users[int(ui[start])]
            window = int(win[start])
            points = ordered[int(start):int(end)]
            if chaos is not None and chaos.batch_lost(feed, window):
                self.lost_points += len(points)
                self.lost_by_window[window] = (
                    self.lost_by_window.get(window, 0) + len(points)
                )
                continue
            late = chaos is not None and chaos.batch_late(feed, window)
            arrival = window + 1 if late else window
            batch = FeedBatch(feed, window, arrival, points, late=late)
            delivered.append(batch)
            if chaos is not None and chaos.batch_duplicated(feed, window):
                delivered.append(
                    FeedBatch(feed, window, arrival, points, late=late, duplicate=True)
                )
        # Canonical delivery order: by arrival window, then event window,
        # then feed name, originals before their duplicates.
        delivered.sort(
            key=lambda b: (b.arrival_window, b.window, b.feed, b.duplicate)
        )
        self.batches = delivered
        last = max(
            (b.arrival_window for b in delivered), default=self.n_event_windows - 1
        )
        self.n_windows = max(self.n_event_windows, last + 1)

    # -- window geometry -----------------------------------------------------
    def window_bounds(self, window: int) -> tuple[float, float]:
        """Absolute event-time bounds ``[t_start, t_end)`` of a window."""
        t0 = (self.base_window + window) * self.window_s
        return t0, t0 + self.window_s

    def arrivals(self, window: int) -> list[FeedBatch]:
        """Batches delivered while ``window`` is open, in canonical order."""
        return [b for b in self.batches if b.arrival_window == window]

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def late_batches(self) -> int:
        return sum(1 for b in self.batches if b.late and not b.duplicate)

    @property
    def dup_batches(self) -> int:
        return sum(1 for b in self.batches if b.duplicate)
