"""Micro-batch streaming in front of the deterministic MapReduce engine.

The streaming layer turns the repo's strictly batch pipeline into a
rolling analysis: a :class:`StreamSource` simulates tenants' users
emitting PLT points on the simtime clock (with chaos-driven late, lost
and duplicate feed batches), a :class:`MicroBatcher` closes fixed
simtime windows into versioned HDFS datasets via ``put_trace_stream``,
and a :class:`StreamingJobManager` submits each window's analysis —
sampling, warm-started incremental k-means, DJ-Cluster POIs over
catalog-ensured persistent indexes, and a re-identification risk score
— as ordinary jobs, through the multi-tenant service or a bare runner.

Determinism contract (docs/STREAMING.md): a windowed streaming run over
a fixed schedule is byte-identical to the equivalent sequence of batch
jobs; :mod:`repro.streaming.check` proves it run by run.
"""

from repro.streaming.source import FeedBatch, StreamSource
from repro.streaming.batcher import MicroBatcher, WindowDataset
from repro.streaming.manager import (
    RiskTimeline,
    StreamRunResult,
    StreamingJobManager,
    WindowResult,
)
from repro.streaming.check import (
    StreamCheckReport,
    StreamOutcome,
    run_multitenant_stream,
    run_stream,
    run_stream_equivalence,
    run_stream_selfcheck,
)

__all__ = [
    "FeedBatch",
    "StreamSource",
    "MicroBatcher",
    "WindowDataset",
    "StreamingJobManager",
    "WindowResult",
    "RiskTimeline",
    "StreamRunResult",
    "run_stream",
    "StreamOutcome",
    "StreamCheckReport",
    "run_stream_equivalence",
    "run_multitenant_stream",
    "run_stream_selfcheck",
]
