"""Streaming equivalence harness: stream vs batch, byte for byte.

The streaming layer's core invariant extends the chaos engine's: a
windowed streaming run over a fixed schedule — corpus, window size,
chaos seed, analysis parameters — must be **byte-identical** to the
equivalent sequence of batch jobs.  "Equivalent batch jobs" is not a
re-implementation: :func:`run_stream` executes the *same*
:class:`~repro.streaming.manager.StreamingJobManager` either through a
multi-tenant :class:`~repro.mapreduce.service.JobService` (``mode=
"service"``: submit → future, fair share, result cache, snapshot
isolation) or directly on a bare
:class:`~repro.mapreduce.runner.JobRunner` (``mode="runner"``: the
batch sequence).  If the whole service control plane is invisible in
the per-window output fingerprints, streaming adds scheduling — never
answers.

A run that cannot complete (a chaos schedule exhausting some task's
retry budget) must fail *cleanly* with
:class:`~repro.mapreduce.failures.JobFailedError`; the harness records
that as an acceptable outcome, mirroring
``tests/properties/test_chaos_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.failures import ChaosSchedule, JobFailedError
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.service import JobService

from repro.streaming.manager import StreamingJobManager, StreamRunResult
from repro.streaming.source import StreamSource

__all__ = [
    "run_stream",
    "StreamOutcome",
    "StreamCheckReport",
    "run_stream_equivalence",
    "run_multitenant_stream",
    "run_stream_selfcheck",
]

#: Deployment geometry shared by every check run (mirrors the chaos
#: campaign defaults: small enough to be fast, wide enough to shuffle).
N_WORKERS = 6
CHUNK_SIZE = 64 * 1024


def run_stream(
    array: TraceArray,
    window_s: float,
    mode: str = "service",
    executor: str = "serial",
    max_workers: int | None = None,
    memory_budget_mb: float | None = None,
    chaos: ChaosSchedule | None = None,
    tenant: str = "stream",
    n_workers: int = N_WORKERS,
    chunk_size: int = CHUNK_SIZE,
    history_path: str | None = None,
    **manager_kwargs,
) -> StreamRunResult:
    """One streaming run on a fresh deployment; returns its results.

    ``mode="service"`` drives every job through a single-tenant
    :class:`JobService`; ``mode="runner"`` runs the identical job
    sequence on a bare :class:`JobRunner` — the batch equivalent.  The
    same ``chaos`` schedule feeds both the engine (task crashes, node
    loss, ...) and the stream source (late/lost/duplicate batches), so
    one seed fixes the whole scenario.
    """
    if mode not in ("service", "runner"):
        raise ValueError(f"unknown mode {mode!r}; known: service, runner")
    hdfs = SimulatedHDFS(
        paper_cluster(n_workers),
        chunk_size=chunk_size,
        seed=0,
        memory_budget_mb=memory_budget_mb,
    )
    source = StreamSource(array, window_s, chaos=chaos, name=tenant)
    if mode == "service":
        with JobService(
            hdfs,
            tenants={tenant: 1.0},
            executor=executor,
            max_workers=max_workers,
            chaos=chaos,
            memory_budget_mb=memory_budget_mb,
        ) as service:
            client = service.client(tenant)
            manager = StreamingJobManager(client, name=tenant, **manager_kwargs)
            result = manager.run(source)
            if history_path is not None:
                client.history.save(history_path)
            return result
    runner = JobRunner(
        hdfs,
        chaos=chaos,
        executor=executor,
        max_workers=max_workers,
        memory_budget_mb=memory_budget_mb,
    )
    try:
        manager = StreamingJobManager(runner, name=tenant, **manager_kwargs)
        result = manager.run(source)
        if history_path is not None:
            runner.history.save(history_path)
        return result
    finally:
        runner.close()


@dataclass
class StreamOutcome:
    """One cell of the equivalence matrix."""

    label: str
    signature: str | None = None
    n_windows: int = 0
    kmeans_iterations: int = 0
    late_points: int = 0
    lost_points: int = 0
    cache_hits: int = 0
    failed: str | None = None

    @property
    def clean_failure(self) -> bool:
        return self.failed is not None


@dataclass
class StreamCheckReport:
    """Equivalence matrix: the batch baseline vs every streaming cell."""

    baseline: StreamOutcome
    cells: list[StreamOutcome] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """Every completed cell matches the baseline byte for byte (a
        clean failure only counts when the baseline failed too)."""
        if self.baseline.clean_failure:
            return all(c.clean_failure for c in self.cells)
        return all(
            not c.clean_failure and c.signature == self.baseline.signature
            for c in self.cells
        )

    def render(self) -> str:
        lines = ["stream equivalence (baseline: batch-job sequence)"]
        rows = [self.baseline, *self.cells]
        for out in rows:
            if out.clean_failure:
                status = f"clean failure: {out.failed}"
            else:
                status = (
                    f"sig={out.signature[:12]} windows={out.n_windows} "
                    f"k-it={out.kmeans_iterations} late={out.late_points} "
                    f"lost={out.lost_points} hits={out.cache_hits}"
                )
            lines.append(f"  {out.label:<28} {status}")
        lines.append(f"identical: {'yes' if self.identical else 'NO'}")
        return "\n".join(lines)


def _outcome(label: str, array, window_s, **kwargs) -> StreamOutcome:
    try:
        res = run_stream(array, window_s, **kwargs)
    except JobFailedError as err:
        return StreamOutcome(label=label, failed=str(err))
    return StreamOutcome(
        label=label,
        signature=res.signature(),
        n_windows=len(res.results),
        kmeans_iterations=res.total_kmeans_iterations,
        late_points=res.late_points,
        lost_points=res.lost_points,
        cache_hits=res.total_cache_hits,
    )


def run_stream_equivalence(
    array: TraceArray,
    window_s: float,
    chaos: ChaosSchedule | None = None,
    executors: tuple[str, ...] = ("serial", "threads"),
    budgets: tuple[float | None, ...] = (None,),
    max_workers: int | None = 2,
    **manager_kwargs,
) -> StreamCheckReport:
    """Batch baseline vs (executor × budget) streaming cells.

    Every cell gets a fresh deployment and the same chaos schedule; the
    report's ``identical`` property is the streaming invariant.
    """
    baseline = _outcome(
        "batch/serial", array, window_s,
        mode="runner", executor="serial", chaos=chaos, **manager_kwargs,
    )
    report = StreamCheckReport(baseline=baseline)
    for executor in executors:
        workers = None if executor == "serial" else max_workers
        for budget in budgets:
            label = f"stream/{executor}" + (
                f"/budget={budget:g}MB" if budget is not None else ""
            )
            report.cells.append(
                _outcome(
                    label, array, window_s,
                    mode="service", executor=executor, max_workers=workers,
                    memory_budget_mb=budget, chaos=chaos, **manager_kwargs,
                )
            )
    return report


def run_multitenant_stream(
    array: TraceArray,
    window_s: float,
    tenants: dict[str, float],
    executor: str = "serial",
    max_workers: int | None = None,
    memory_budget_mb: float | None = None,
    chaos: ChaosSchedule | None = None,
    history_path: str | None = None,
    **manager_kwargs,
) -> tuple[dict[str, StreamRunResult], "object"]:
    """N tenants' feeds sharing one service, windows interleaved.

    Users are split round-robin (by sorted user id) into one sub-stream
    per tenant; each tenant gets its own manager, and every window index
    is processed for all tenants before the next one opens — the
    fair-share scheduler arbitrates the per-window job bursts.  Returns
    ``(per-tenant results, service report)``.
    """
    if not tenants:
        raise ValueError("tenants must not be empty")
    names = sorted(tenants)
    users = sorted(set(array.users))
    assignment = {u: names[i % len(names)] for i, u in enumerate(users)}
    hdfs = SimulatedHDFS(
        paper_cluster(N_WORKERS), chunk_size=CHUNK_SIZE, seed=0,
        memory_budget_mb=memory_budget_mb,
    )
    with JobService(
        hdfs,
        tenants=tenants,
        executor=executor,
        max_workers=max_workers,
        chaos=chaos,
        memory_budget_mb=memory_budget_mb,
    ) as service:
        managers: dict[str, StreamingJobManager] = {}
        sources: dict[str, StreamSource] = {}
        datasets: dict[str, list] = {}
        for name in names:
            keep = np.asarray(
                [i for i, u in enumerate(array.users) if assignment[u] == name]
            )
            mask = np.isin(array.user_index, keep)
            # Rebuild from columns so the sub-array's user table holds
            # only this tenant's users (slices keep the full table).
            sub = TraceArray.from_columns(
                array.user_ids()[mask],
                array.latitude[mask],
                array.longitude[mask],
                array.timestamp[mask],
                array.altitude[mask],
            )
            sources[name] = StreamSource(
                sub, window_s, chaos=chaos, name=name
            )
            managers[name] = StreamingJobManager(
                service.client(name), name=name, **manager_kwargs
            )
            managers[name].timeline.window_s = float(window_s)
            datasets[name] = []
        n_windows = max(s.n_windows for s in sources.values())
        for w in range(n_windows):
            for name in names:
                if w >= sources[name].n_windows:
                    continue
                dataset = managers[name].batcher.close_window(sources[name], w)
                datasets[name].append(dataset)
                managers[name].process(dataset)
        if history_path is not None:
            service.history.save(history_path)
        results = {
            name: StreamRunResult(
                timeline=managers[name].timeline,
                results=managers[name].results,
                datasets=datasets[name],
            )
            for name in names
        }
        return results, service.report()


# ---------------------------------------------------------------------------
# Selfcheck
# ---------------------------------------------------------------------------

def _selfcheck_manager_kwargs() -> dict:
    from repro.algorithms.djcluster import DJClusterParams

    return {
        "k": 3,
        "max_iter": 8,
        "sampling_window_s": 1800.0,
        "dj_params": DJClusterParams(radius_m=200.0, min_pts=3),
    }


def run_stream_selfcheck(verbose: bool = False) -> bool:
    """End-to-end streaming smoke: equivalence, chaos, warm start.

    Five runs over a small synthetic corpus: the batch baseline, the
    service path (with a memory budget and with the threads backend),
    both paths again under a feed+engine chaos schedule, and a
    cold-start run for the warm-start iteration bound.
    """
    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=11))
    array = dataset.flat()
    window_s = 3 * 3600.0
    kwargs = _selfcheck_manager_kwargs()
    checks: list[tuple[str, bool]] = []

    base = _outcome(
        "batch/serial", array, window_s, mode="runner", **kwargs
    )
    for label, cell_kwargs in (
        ("stream/serial+budget", dict(
            mode="service", executor="serial", memory_budget_mb=8.0)),
        ("stream/threads", dict(
            mode="service", executor="threads", max_workers=2)),
    ):
        cell = _outcome(label, array, window_s, **cell_kwargs, **kwargs)
        checks.append(
            (f"{label} == batch", cell.signature == base.signature)
        )
    from repro.mapreduce.failures import Fault, FaultKind

    # The scripted late fault guarantees watermark handling is exercised
    # even if every probabilistic draw misses on this small feed count.
    chaos = ChaosSchedule(
        seed=5,
        crash_prob=0.02,
        slow_node_prob=0.1,
        late_batch_prob=0.3,
        lost_batch_prob=0.1,
        dup_batch_prob=0.3,
        faults=(Fault(FaultKind.LATE_BATCH, window=0),),
    )
    chaos_batch = _outcome(
        "batch/serial+chaos", array, window_s,
        mode="runner", chaos=chaos, **kwargs,
    )
    chaos_stream = _outcome(
        "stream/serial+chaos", array, window_s,
        mode="service", chaos=chaos, **kwargs,
    )
    checks.append((
        "chaos stream == chaos batch",
        chaos_stream.signature == chaos_batch.signature
        and chaos_stream.signature is not None,
    ))
    checks.append((
        "chaos rerouted feed batches",
        chaos_stream.clean_failure
        or (chaos_stream.late_points + chaos_stream.lost_points) > 0,
    ))
    cold = _outcome(
        "batch/serial/cold", array, window_s,
        mode="runner", warm_start=False, **kwargs,
    )
    checks.append((
        "warm-start iterations <= cold-start",
        base.kmeans_iterations <= cold.kmeans_iterations,
    ))
    ok = all(passed for _, passed in checks)
    if verbose:
        for name, passed in checks:
            print(f"  [{'ok' if passed else 'FAIL'}] {name}")
    return ok
