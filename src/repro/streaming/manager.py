"""Per-window analysis jobs and the rolling re-identification risk.

The :class:`StreamingJobManager` is the streaming control plane's driver
half: for every window the :class:`~repro.streaming.batcher.MicroBatcher`
seals, it runs the paper's analysis chain as ordinary MapReduce jobs —

1. **windowed sampling** (Section V) over the window dataset;
2. **incremental k-means** (Section VI): the window's clustering is
   warm-started from the previous window's centroids, so a stationary
   stream converges in a fraction of the cold-start iterations;
3. **windowed DJ-Cluster POIs** (Section VII) over the sampled output,
   reading catalog-ensured persistent R-tree indexes;
4. a **re-identification risk score**
   (:func:`repro.metrics.privacy.window_reidentification_risk`, or the
   shuffle-light :func:`repro.metrics.risk_rollup.window_risk_mapreduce`
   job when ``risk_rollup`` is on — same score either way) plus a
   cross-window top-cell linkage count, appended to the
   :class:`RiskTimeline`.

``client`` is anything runner-shaped: a
:class:`~repro.mapreduce.service.TenantClient` (jobs flow through the
multi-tenant service as submit → future) or a plain
:class:`~repro.mapreduce.runner.JobRunner` (the equivalent batch-job
sequence).  The determinism contract is that both modes produce
byte-identical :meth:`WindowResult.signature` chains — the streaming
equivalence invariant ``tests/streaming`` pins down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.djcluster import DJClusterParams, run_djcluster_mapreduce
from repro.algorithms.kmeans import run_kmeans_mapreduce
from repro.algorithms.sampling import run_sampling_job
from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import TraceArray
from repro.metrics.privacy import WindowRisk, window_reidentification_risk
from repro.observability.events import EventKind

from repro.streaming.batcher import MicroBatcher, WindowDataset
from repro.streaming.source import StreamSource

__all__ = [
    "StreamingJobManager",
    "WindowResult",
    "RiskTimeline",
    "StreamRunResult",
]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0

#: Event kinds that count as "served from a cache, zero tasks ran".
_CACHE_HIT_KINDS = (EventKind.RESULT_CACHE_HIT, EventKind.INDEX_REUSE)


def _digest(*blobs: bytes) -> str:
    h = hashlib.sha256()
    for blob in blobs:
        h.update(blob)
    return h.hexdigest()


def _array_signature(array: TraceArray) -> str:
    """Canonical fingerprint of a columnar trace array (order-sensitive)."""
    return _digest(
        ",".join(array.users).encode(),
        np.ascontiguousarray(array.user_index).tobytes(),
        np.ascontiguousarray(array.latitude).tobytes(),
        np.ascontiguousarray(array.longitude).tobytes(),
        np.ascontiguousarray(array.timestamp).tobytes(),
    )


def _top_cells(array: TraceArray, cell_m: float) -> dict[str, tuple[int, int]]:
    """Each user's modal grid cell (most visited; ties break to the
    lexicographically smallest cell) — the linkage quasi-identifier."""
    if len(array) == 0:
        return {}
    cell_lat = cell_m / _M_PER_DEG_LAT
    lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
    cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
    cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
    lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
    rows = np.stack(
        [array.user_index.astype(np.int64), lat_band, lon_band], axis=1
    )
    uniq, counts = np.unique(rows, axis=0, return_counts=True)
    order = np.lexsort((uniq[:, 2], uniq[:, 1], -counts, uniq[:, 0]))
    ranked = uniq[order]
    first = np.ones(len(ranked), dtype=bool)
    first[1:] = ranked[1:, 0] != ranked[:-1, 0]
    return {
        array.users[int(u)]: (int(la), int(lo))
        for u, la, lo in ranked[first]
    }


@dataclass
class WindowResult:
    """Everything one window's analysis produced, fingerprinted."""

    window: WindowDataset
    sampled_path: str
    sampled_signature: str
    n_sampled: int
    kmeans_iterations: int
    warm_start: bool
    converged: bool
    centroids: np.ndarray | None
    n_pois: int
    cluster_digest: str
    risk: WindowRisk
    linked_users: int
    latency_s: float
    cache_hits: int

    def signature(self) -> str:
        """Byte-identity fingerprint of the window's visible outputs."""
        doc = {
            "window": self.window.to_doc(),
            "sampled": self.sampled_signature,
            "n_sampled": self.n_sampled,
            "kmeans_iterations": self.kmeans_iterations,
            "warm_start": self.warm_start,
            "converged": self.converged,
            "n_pois": self.n_pois,
            "clusters": self.cluster_digest,
            "risk": self.risk.to_doc(),
            "linked_users": self.linked_users,
        }
        centroid_bytes = (
            np.ascontiguousarray(self.centroids).tobytes()
            if self.centroids is not None
            else b""
        )
        return _digest(
            json.dumps(doc, sort_keys=True).encode(), centroid_bytes
        )

    def to_row(self) -> dict:
        row = self.window.to_doc()
        row.update(
            n_sampled=self.n_sampled,
            kmeans_iterations=self.kmeans_iterations,
            warm_start=self.warm_start,
            converged=self.converged,
            n_pois=self.n_pois,
            linked_users=self.linked_users,
            latency_s=round(self.latency_s, 6),
            cache_hits=self.cache_hits,
            signature=self.signature(),
        )
        row.update(self.risk.to_doc())
        return row


@dataclass
class RiskTimeline:
    """The stream's rolling privacy artifact: one row per closed window."""

    name: str
    window_s: float
    cell_m: float
    rows: list[dict] = field(default_factory=list)

    def append(self, result: WindowResult) -> None:
        self.rows.append(result.to_row())

    def to_doc(self) -> dict:
        return {
            "schema": 1,
            "name": self.name,
            "window_s": self.window_s,
            "cell_m": self.cell_m,
            "rows": self.rows,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "RiskTimeline":
        return cls(
            name=doc["name"],
            window_s=float(doc["window_s"]),
            cell_m=float(doc["cell_m"]),
            rows=list(doc["rows"]),
        )

    def render(self) -> str:
        """Fixed-width table of the timeline, one line per window."""
        header = (
            f"risk timeline: {self.name}  "
            f"(window={self.window_s:g}s, cell={self.cell_m:g}m)"
        )
        cols = (
            f"{'win':>4} {'points':>8} {'late':>6} {'lost':>6} {'dup':>6} "
            f"{'sampled':>8} {'k-it':>5} {'warm':>5} {'pois':>5} "
            f"{'risk':>6} {'minK':>5} {'linked':>7} {'lat(s)':>9} {'hits':>5}"
        )
        lines = [header, cols, "-" * len(cols)]
        for r in self.rows:
            lines.append(
                f"{r['window']:>4} {r['n_points']:>8} {r['late_points']:>6} "
                f"{r['lost_points']:>6} {r['dup_points']:>6} "
                f"{r['n_sampled']:>8} {r['kmeans_iterations']:>5} "
                f"{('yes' if r['warm_start'] else 'no'):>5} {r['n_pois']:>5} "
                f"{r['risk']:>6.3f} {r['min_anonymity']:>5} "
                f"{r['linked_users']:>7} {r['latency_s']:>9.2f} "
                f"{r['cache_hits']:>5}"
            )
        if self.rows:
            total_it = sum(r["kmeans_iterations"] for r in self.rows)
            total_late = sum(r["late_points"] for r in self.rows)
            total_lost = sum(r["lost_points"] for r in self.rows)
            lines.append(
                f"{len(self.rows)} windows, {total_it} k-means iterations, "
                f"{total_late} late / {total_lost} lost points"
            )
        return "\n".join(lines)


@dataclass
class StreamRunResult:
    """One full streaming run: datasets, per-window results, timeline."""

    timeline: RiskTimeline
    results: list[WindowResult]
    datasets: list[WindowDataset]

    def signature(self) -> str:
        """Digest over every window's output fingerprint, in order."""
        return _digest(*(r.signature().encode() for r in self.results))

    @property
    def total_kmeans_iterations(self) -> int:
        return sum(r.kmeans_iterations for r in self.results)

    @property
    def total_cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.results)

    @property
    def late_points(self) -> int:
        return sum(d.late_points for d in self.datasets)

    @property
    def lost_points(self) -> int:
        return sum(d.lost_points for d in self.datasets)


class StreamingJobManager:
    """Runs the per-window analysis chain over a stream's sealed windows.

    Windows are processed strictly in order; the k-means warm start makes
    window ``w``'s clustering depend on ``w-1``'s, which is exactly the
    incremental-analysis structure the streaming layer exists for.  All
    thresholds (``k``, DJ-Cluster parameters, risk binning) are fixed at
    construction so a run is a pure function of (corpus, window size,
    chaos schedule, these parameters).
    """

    def __init__(
        self,
        client,
        name: str = "stream",
        root: str = "streams",
        k: int = 4,
        max_iter: int = 12,
        convergence_delta: float = 1e-4,
        distance: str = "squared_euclidean",
        seed: int = 0,
        sampling_window_s: float = 600.0,
        technique: str = "upper",
        warm_start: bool = True,
        dj_params: DJClusterParams | None = None,
        pois: bool = True,
        risk_cell_m: float = 500.0,
        risk_window_s: float = 3600.0,
        risk_rollup: bool = False,
    ):
        self.client = client
        self.name = name
        self.root = root
        self.k = k
        self.max_iter = max_iter
        self.convergence_delta = convergence_delta
        self.distance = distance
        self.seed = seed
        self.sampling_window_s = sampling_window_s
        self.technique = technique
        self.warm_start = warm_start
        self.dj_params = dj_params if dj_params is not None else DJClusterParams()
        self.pois = pois
        self.risk_cell_m = risk_cell_m
        self.risk_window_s = risk_window_s
        #: When on, step 4's risk score runs as the
        #: :func:`~repro.metrics.risk_rollup.window_risk_mapreduce` job
        #: (an aggregation-declared rollup whose shuffle moves fixed-size
        #: envelopes) instead of the driver-side pass.  Both produce the
        #: same :class:`WindowRisk`, so signature chains are unchanged.
        self.risk_rollup = risk_rollup
        self.batcher = MicroBatcher(
            client.hdfs, name=name, root=root, history=client.history,
            job=f"{name}-ingest",
        )
        self.results: list[WindowResult] = []
        self.timeline = RiskTimeline(
            name=name, window_s=0.0, cell_m=risk_cell_m
        )
        self._prev_centroids: np.ndarray | None = None
        self._prev_top_cells: dict[str, tuple[int, int]] = {}

    # -- plumbing ------------------------------------------------------------
    def _set_tags(self, tags: dict | None) -> None:
        # TenantClient carries submit tags; a bare JobRunner stamps
        # job_tags straight into its JOB_START events.
        if hasattr(self.client, "tags"):
            self.client.tags = tags
        else:
            self.client.job_tags = tags

    def _cache_hits(self) -> int:
        return sum(
            1 for e in self.client.history if e.kind in _CACHE_HIT_KINDS
        )

    # -- one window ----------------------------------------------------------
    def process(self, dataset: WindowDataset) -> WindowResult:
        """Run the analysis chain over one sealed window."""
        client = self.client
        hdfs = client.hdfs
        history = client.history
        w = dataset.index
        wdir = f"{self.root}/{self.name}/work/w{w:04d}"
        clock0 = history.clock
        hits0 = self._cache_hits()
        self._set_tags({"stream": self.name, "window": w})
        try:
            window_array = (
                hdfs.read_trace_array(dataset.path)
                if dataset.n_points
                else TraceArray.empty()
            )
            # 1. windowed sampling (skipped for an empty window: a
            # map-only job over zero records writes no output file).
            sampled_path = f"{wdir}/sampled"
            if dataset.n_points:
                hdfs.delete(sampled_path, missing_ok=True)
                run_sampling_job(
                    client,
                    dataset.path,
                    sampled_path,
                    self.sampling_window_s,
                    technique=self.technique,
                    name=f"{self.name}-w{w:04d}-sample",
                )
                sampled = hdfs.read_trace_array(sampled_path)
            else:
                sampled = TraceArray.empty()
            # 2. incremental k-means, warm-started from the previous
            # window's centroids when available.
            warm = (
                self.warm_start
                and self._prev_centroids is not None
                and len(self._prev_centroids) == self.k
            )
            if dataset.n_points >= self.k:
                km = run_kmeans_mapreduce(
                    client,
                    dataset.path,
                    k=self.k,
                    distance=self.distance,
                    convergence_delta=self.convergence_delta,
                    max_iter=self.max_iter,
                    seed=self.seed + w,
                    initial_centroids=self._prev_centroids if warm else None,
                    use_combiner=True,
                    workdir=f"{wdir}/kmeans",
                    name_prefix=f"{self.name}-w{w:04d}-kmeans",
                )
                centroids = km.centroids
                iterations = km.n_iterations
                converged = km.converged
                self._prev_centroids = centroids
            else:
                # Too few points to cluster: carry the model forward.
                warm = False
                centroids = self._prev_centroids
                iterations = 0
                converged = False
            # 3. windowed DJ-Cluster POIs over the sampled output,
            # against the catalog-ensured persistent index.
            if self.pois and len(sampled):
                dj = run_djcluster_mapreduce(
                    client,
                    sampled_path,
                    params=self.dj_params,
                    workdir=f"{wdir}/dj",
                    use_persistent_index=True,
                    name_prefix=f"{self.name}-w{w:04d}-dj",
                )
                n_pois = dj.n_clusters
                cluster_digest = _digest(
                    *(ids.tobytes() for ids in dj.clusters)
                )
            else:
                n_pois = 0
                cluster_digest = _digest(b"")
            # 4. rolling re-identification risk + cross-window linkage.
            if self.risk_rollup and dataset.n_points:
                from repro.metrics.risk_rollup import window_risk_mapreduce

                hdfs.delete(f"{wdir}/risk", missing_ok=True)
                risk, _ = window_risk_mapreduce(
                    client,
                    dataset.path,
                    f"{wdir}/risk",
                    cell_m=self.risk_cell_m,
                    window_s=self.risk_window_s,
                    name=f"{self.name}-w{w:04d}-risk",
                )
            else:
                risk = window_reidentification_risk(
                    window_array, cell_m=self.risk_cell_m,
                    window_s=self.risk_window_s,
                )
            top = _top_cells(window_array, self.risk_cell_m)
            linked = sum(
                1 for user, cell in top.items()
                if self._prev_top_cells.get(user) == cell
            )
            self._prev_top_cells = top
        finally:
            self._set_tags(None)
        latency = history.clock - clock0
        result = WindowResult(
            window=dataset,
            sampled_path=sampled_path,
            sampled_signature=_array_signature(sampled),
            n_sampled=len(sampled),
            kmeans_iterations=iterations,
            warm_start=warm,
            converged=converged,
            centroids=centroids,
            n_pois=n_pois,
            cluster_digest=cluster_digest,
            risk=risk,
            linked_users=linked,
            latency_s=latency,
            cache_hits=self._cache_hits() - hits0,
        )
        self.results.append(result)
        self.timeline.append(result)
        if history is not None:
            history.emit(
                EventKind.WINDOW_RESULT,
                self.batcher.job,
                history.clock,
                window=w,
                n_points=dataset.n_points,
                kmeans_iterations=iterations,
                warm_start=warm,
                n_pois=n_pois,
                risk=risk.risk,
                min_anonymity=risk.min_anonymity,
                latency_s=latency,
            )
        return result

    # -- whole stream --------------------------------------------------------
    def run(self, source: StreamSource) -> StreamRunResult:
        """Micro-batch the whole stream: seal, analyze, repeat."""
        self.timeline = RiskTimeline(
            name=self.name, window_s=float(source.window_s),
            cell_m=self.risk_cell_m,
        )
        self.results = []
        self._prev_centroids = None
        self._prev_top_cells = {}
        datasets: list[WindowDataset] = []
        for w in range(source.n_windows):
            dataset = self.batcher.close_window(source, w)
            datasets.append(dataset)
            self.process(dataset)
        return StreamRunResult(
            timeline=self.timeline,
            results=list(self.results),
            datasets=datasets,
        )
