"""Micro-batching: close simtime windows into versioned HDFS datasets.

The :class:`MicroBatcher` consumes a :class:`~repro.streaming.source.
StreamSource` window by window.  While window ``w`` is open it accepts
every batch delivered during ``w`` — on-time batches of window ``w``
plus late batches of window ``w-1`` that missed the previous watermark.
At close time it advances the **watermark** (every point below it is
now accounted for: delivered, counted late, or counted lost), sorts the
collected points into canonical (user, time) order, and seals them into
one versioned HDFS dataset via the existing ``put_trace_stream``
ingestion path — so a window dataset is indistinguishable from a batch
upload and every downstream job (and the result cache, keyed on dataset
versions) treats it identically.

Watermark semantics (docs/STREAMING.md): late points land in the *next*
window's dataset and are counted in its ``late_points``; lost batches
are counted against their event window's ``lost_points``; duplicate
deliveries are dropped by their ``(feed, window)`` identity and counted
in ``dup_points`` — none of the three changes a dataset's bytes beyond
the late reassignment itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.trace import TraceArray
from repro.observability.events import EventKind

from repro.streaming.source import StreamSource

__all__ = ["WindowDataset", "MicroBatcher"]


@dataclass(frozen=True)
class WindowDataset:
    """One sealed window: an immutable HDFS dataset plus its counters."""

    index: int
    path: str
    t_start: float
    t_end: float
    n_points: int
    n_feeds: int
    late_points: int
    lost_points: int
    dup_points: int

    def to_doc(self) -> dict:
        return {
            "window": self.index,
            "path": self.path,
            "n_points": self.n_points,
            "n_feeds": self.n_feeds,
            "late_points": self.late_points,
            "lost_points": self.lost_points,
            "dup_points": self.dup_points,
        }


class MicroBatcher:
    """Seals a stream's windows into HDFS datasets, emitting window events.

    ``job`` labels the stream's control-plane events in the history
    (``window_open``/``watermark``/``window_close``); it is not a real
    job name, so histories stay valid without a ``job_start``.
    """

    def __init__(
        self,
        hdfs,
        name: str = "stream",
        root: str = "streams",
        history=None,
        job: str | None = None,
    ):
        self.hdfs = hdfs
        self.name = name
        self.root = root
        self.history = history
        self.job = job or f"{name}-ingest"

    def window_path(self, window: int) -> str:
        return f"{self.root}/{self.name}/window-{window:04d}"

    def _emit(self, kind: str, **data) -> None:
        if self.history is not None:
            self.history.emit(kind, self.job, self.history.clock, **data)

    def close_window(self, source: StreamSource, window: int) -> WindowDataset:
        """Collect window ``window``'s deliveries and seal its dataset."""
        t_start, t_end = source.window_bounds(window)
        self._emit(
            EventKind.WINDOW_OPEN, window=window, t_start=t_start, t_end=t_end
        )
        pieces: list[TraceArray] = []
        seen: set[tuple[str, int]] = set()
        late_points = 0
        dup_points = 0
        feeds: set[str] = set()
        for batch in source.arrivals(window):
            key = (batch.feed, batch.window)
            if key in seen:
                dup_points += len(batch)
                continue
            seen.add(key)
            if batch.window < window:
                late_points += len(batch)
            pieces.append(batch.points)
            feeds.add(batch.feed)
        self._emit(EventKind.WATERMARK, window=window, watermark=t_end)
        merged = (
            TraceArray.concatenate(pieces).sort_by_time().compact()
            if pieces
            else TraceArray.empty()
        )
        path = self.window_path(window)
        self.hdfs.delete(path, missing_ok=True)
        self.hdfs.put_trace_stream(path, [merged])
        dataset = WindowDataset(
            index=window,
            path=path,
            t_start=t_start,
            t_end=t_end,
            n_points=len(merged),
            n_feeds=len(feeds),
            late_points=late_points,
            lost_points=source.lost_by_window.get(window, 0),
            dup_points=dup_points,
        )
        self._emit(EventKind.WINDOW_CLOSE, **dataset.to_doc())
        return dataset

    def run(self, source: StreamSource) -> list[WindowDataset]:
        """Seal every window of the stream, in order."""
        return [
            self.close_window(source, w) for w in range(source.n_windows)
        ]
