"""DJ-Cluster: density-joinable clustering (Section VII, Figure 5).

DJ-Cluster looks for dense neighborhoods of traces; density is defined by
a radius ``r`` and a minimum population ``MinPts``.  The algorithm runs in
three phases, each expressible in MapReduce:

1. **Preprocessing** — two pipelined map-only jobs: (a) discard *moving*
   traces, i.e. traces whose speed (distance between the previous and the
   next trace divided by the corresponding time difference) exceeds a
   small ε; (b) collapse sequences of redundant consecutive traces (same
   coordinate, different timestamps) to their first trace.
2. **Neighborhood identification** — a map phase: each mapper loads a
   pre-built R-tree from the distributed cache, computes each trace's
   ``r``-neighborhood, labels traces with fewer than ``MinPts`` neighbors
   as noise, and emits the dense neighborhoods under a constant key
   (Algorithm 4).
3. **Merging** — a single reducer joins all *joinable* neighborhoods
   (neighborhoods sharing at least one trace) into clusters
   (Algorithm 5).

The sequential reference implementation shares the same primitives, so
the MapReduce path is testably equivalent on single-chunk inputs.  By the
end, each trace is either assigned to a cluster or marked as noise, and
clusters are non-overlapping with at least ``MinPts`` traces each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.trace import TraceArray
from repro.index.persistent import IndexCatalog
from repro.index.rtree import RTree
from repro.index.rtree_mr import build_rtree_mapreduce
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import ConstantKeyPartitioner, JobSpec, Mapper, Reducer
from repro.mapreduce.pipeline import JobPipeline, PipelineResult
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.types import Chunk
from repro.observability.events import EventKind

__all__ = [
    "DJClusterParams",
    "DJClusterResult",
    "filter_moving_traces",
    "remove_redundant_traces",
    "preprocess_array",
    "djcluster_sequential",
    "run_preprocessing_pipeline",
    "run_djcluster_mapreduce",
    "RTREE_CACHE_KEY",
]

#: Distributed-cache key under which the driver publishes the R-tree.
RTREE_CACHE_KEY = "djcluster.rtree"


@dataclass(frozen=True)
class DJClusterParams:
    """DJ-Cluster parameters.

    ``speed_threshold_ms`` defaults to the paper's ε: 0.2 m/s, i.e.
    0.72 km/h.  ``dedup_tolerance_m`` bounds "almost the same spatial
    coordinate" for the redundancy filter; the 1 m default sits below
    typical GPS jitter, so — as in Table IV — duplicate removal shaves
    only a small slice beyond the speed filter.
    """

    radius_m: float = 100.0
    min_pts: int = 10
    speed_threshold_ms: float = 0.2
    dedup_tolerance_m: float = 1.0
    rtree_max_entries: int = 32

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("radius_m must be positive")
        if self.min_pts < 1:
            raise ValueError("min_pts must be >= 1")
        if self.speed_threshold_ms < 0:
            raise ValueError("speed_threshold_ms must be non-negative")
        if self.dedup_tolerance_m < 0:
            raise ValueError("dedup_tolerance_m must be non-negative")


# ---------------------------------------------------------------------------
# Preprocessing primitives (shared by sequential and MapReduce paths)
# ---------------------------------------------------------------------------

def trace_speeds(array: TraceArray) -> np.ndarray:
    """Per-trace speed in m/s over a (user, time)-sorted array.

    The speed of trace *i* is the distance between its previous and next
    same-user traces divided by the corresponding time difference; the
    first/last trace of a trail falls back to its single adjacent pair.
    Isolated traces (single-trace trails) get speed 0 (stationary).
    """
    n = len(array)
    if n == 0:
        return np.empty(0)
    lat, lon, ts, users = array.latitude, array.longitude, array.timestamp, array.user_index
    prev_idx = np.arange(n) - 1
    next_idx = np.arange(n) + 1
    has_prev = np.zeros(n, dtype=bool)
    has_next = np.zeros(n, dtype=bool)
    has_prev[1:] = users[1:] == users[:-1]
    has_next[:-1] = users[:-1] == users[1:]
    # Clamp the window ends onto the trace itself where a neighbor is
    # missing, producing the one-sided fallback for trail endpoints.
    lo = np.where(has_prev, prev_idx, np.arange(n))
    hi = np.where(has_next, next_idx, np.arange(n))
    dist = np.asarray(haversine_m(lat[lo], lon[lo], lat[hi], lon[hi]))
    dt = ts[hi] - ts[lo]
    speeds = np.zeros(n)
    moving_window = dt > 0
    speeds[moving_window] = dist[moving_window] / dt[moving_window]
    return speeds


def filter_moving_traces(array: TraceArray, speed_threshold_ms: float) -> TraceArray:
    """First preprocessing filter: keep stationary traces (speed <= ε)."""
    if len(array) == 0:
        return array
    ordered = array.sort_by_time()
    speeds = trace_speeds(ordered)
    return ordered[speeds <= speed_threshold_ms]


def remove_redundant_traces(array: TraceArray, tolerance_m: float) -> TraceArray:
    """Second filter: drop consecutive same-user traces within tolerance.

    Each run of redundant traces keeps only its first trace ("the role of
    the mapper is simply to output the first trace from a sequence of
    traces that are redundant").
    """
    n = len(array)
    if n <= 1:
        return array
    ordered = array.sort_by_time()
    lat, lon, users = ordered.latitude, ordered.longitude, ordered.user_index
    step = np.asarray(haversine_m(lat[:-1], lon[:-1], lat[1:], lon[1:]))
    same_user = users[1:] == users[:-1]
    keep = np.ones(n, dtype=bool)
    keep[1:] = ~(same_user & (step <= tolerance_m))
    return ordered[keep]


def preprocess_array(array: TraceArray, params: DJClusterParams) -> tuple[TraceArray, TraceArray]:
    """Run both filters; returns (after speed filter, after dedup).

    Both intermediate results are returned because Table IV reports the
    trace count after each filter separately.
    """
    stationary = filter_moving_traces(array, params.speed_threshold_ms)
    deduped = remove_redundant_traces(stationary, params.dedup_tolerance_m)
    return stationary, deduped


# ---------------------------------------------------------------------------
# Cluster merging (shared)
# ---------------------------------------------------------------------------

class _UnionFind:
    """Disjoint sets over trace ids, used to join joinable neighborhoods.

    Equivalent to Algorithm 5's "merge all joinable neighborhoods with
    existing clusters or create new clusters": two neighborhoods sharing a
    trace end up in one component.
    """

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent
        root = parent.setdefault(x, x)
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def components(self) -> list[np.ndarray]:
        groups: dict[int, list[int]] = {}
        for x in self._parent:
            groups.setdefault(self.find(x), []).append(x)
        return [np.sort(np.array(ids, dtype=np.int64)) for _, ids in sorted(groups.items())]


def _merge_neighborhoods(neighborhoods: list[np.ndarray]) -> list[np.ndarray]:
    """Join all joinable neighborhoods into non-overlapping clusters."""
    uf = _UnionFind()
    for hood in neighborhoods:
        if len(hood) == 0:
            continue
        first = int(hood[0])
        uf.find(first)
        for other in hood[1:]:
            uf.union(first, int(other))
    clusters = uf.components()
    clusters.sort(key=lambda ids: (int(ids[0]), len(ids)))
    return clusters


# ---------------------------------------------------------------------------
# Sequential reference
# ---------------------------------------------------------------------------

@dataclass
class DJClusterResult:
    """Clustering outcome over the *preprocessed* trace array."""

    preprocessed: TraceArray
    clusters: list[np.ndarray]
    noise_ids: np.ndarray
    labels: np.ndarray
    params: DJClusterParams
    sim_seconds: float = 0.0
    stage_sim_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_centroids(self) -> np.ndarray:
        """(n_clusters, 2) mean coordinate of each cluster (POI candidates)."""
        points = self.preprocessed.coordinates()
        if not self.clusters:
            return np.empty((0, 2))
        return np.array([points[ids].mean(axis=0) for ids in self.clusters])

    def cluster_signature(self) -> set[frozenset]:
        """Order-independent cluster identity, for equivalence tests."""
        return {frozenset(int(i) for i in ids) for ids in self.clusters}


def _label_clusters(n: int, clusters: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    labels = np.full(n, -1, dtype=np.int64)
    for idx, ids in enumerate(clusters):
        labels[ids] = idx
    noise = np.flatnonzero(labels < 0)
    return labels, noise


def djcluster_sequential(
    array: TraceArray,
    params: DJClusterParams | None = None,
    preprocess: bool = True,
    use_rtree: bool = False,
) -> DJClusterResult:
    """Single-node DJ-Cluster (GEPETO's original implementation).

    ``preprocess=False`` skips the filtering phases when the caller has
    already preprocessed the array (e.g. to reuse Table IV outputs).
    Neighborhoods default to the vectorized grid self-join (identical
    sets, far faster in Python); ``use_rtree=True`` switches to per-point
    R-tree queries — the paper's formulation, kept for cross-validation.
    """
    if params is None:
        params = DJClusterParams()
    if preprocess:
        _, prepared = preprocess_array(array, params)
    else:
        prepared = array.sort_by_time()
    n = len(prepared)
    if n == 0:
        return DJClusterResult(prepared, [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), params)
    points = prepared.coordinates()
    neighborhoods = []
    if use_rtree:
        tree = RTree.bulk_load(points, max_entries=params.rtree_max_entries)
        for i in range(n):
            hood = tree.query_radius(points[i, 0], points[i, 1], params.radius_m)
            if len(hood) >= params.min_pts:
                neighborhoods.append(hood)
    else:
        from repro.index.selfjoin import radius_self_join

        for hood in radius_self_join(points, params.radius_m):
            if len(hood) >= params.min_pts:
                neighborhoods.append(hood)
    clusters = _merge_neighborhoods(neighborhoods)
    labels, noise = _label_clusters(n, clusters)
    return DJClusterResult(prepared, clusters, noise, labels, params)


# ---------------------------------------------------------------------------
# MapReduce adaptation
# ---------------------------------------------------------------------------

class SpeedFilterMapper(Mapper):
    """Preprocessing job 1: keep only stationary traces (map-only)."""

    def run(self, chunk: Chunk, ctx) -> None:
        threshold = ctx.conf.get_float("djcluster.speed_threshold_ms")
        kept = filter_moving_traces(chunk.trace_array(), threshold)
        if len(kept):
            ctx.emit_array(kept)


class DeduplicateMapper(Mapper):
    """Preprocessing job 2: collapse redundant consecutive traces."""

    def run(self, chunk: Chunk, ctx) -> None:
        tolerance = ctx.conf.get_float("djcluster.dedup_tolerance_m")
        kept = remove_redundant_traces(chunk.trace_array(), tolerance)
        if len(kept):
            ctx.emit_array(kept)


class NeighborhoodMapper(Mapper):
    """Phase 2 (Algorithm 4): emit each trace's dense neighborhood.

    The R-tree over the whole preprocessed dataset is loaded from the
    distributed cache during ``setup``; traces whose neighborhood has
    fewer than ``MinPts`` members are counted as noise and not emitted.
    The constant intermediate key routes every pair to the one reducer.
    """

    def setup(self, ctx) -> None:
        self._tree: RTree = ctx.cache.get(RTREE_CACHE_KEY)
        self._radius = ctx.conf.get_float("djcluster.radius_m")
        self._min_pts = ctx.conf.get_int("djcluster.min_pts")

    def run(self, chunk: Chunk, ctx) -> None:
        array = chunk.trace_array()
        points = array.coordinates()
        # One batched tree walk answers the whole chunk; the result arrays
        # are exactly the per-point query_radius sets, so emissions (and
        # therefore shuffle bytes, counters, histories) are unchanged.
        hoods = self._tree.query_radius_batch(points, self._radius)
        for i, hood in enumerate(hoods):
            if len(hood) >= self._min_pts:
                ctx.emit("all", hood, nbytes=int(hood.nbytes), n_records=1)
            else:
                ctx.counters.increment("djcluster", "noise_traces", 1)
            # The trace's own global id is offset + i; recorded for audit.
        ctx.counters.increment("djcluster", "traces_examined", len(points))


class MergeReducer(Reducer):
    """Phase 3 (Algorithm 5): merge joinable neighborhoods into clusters."""

    def reduce(self, key, values, ctx) -> None:
        clusters = _merge_neighborhoods(list(values))
        for idx, ids in enumerate(clusters):
            ctx.emit(idx, ids, nbytes=int(ids.nbytes))


def run_preprocessing_pipeline(
    runner: JobRunner,
    input_path: str,
    params: DJClusterParams,
    workdir: str = "tmp/djcluster",
    name_prefix: str = "dj",
) -> PipelineResult:
    """Figure 5's two pipelined map-only preprocessing jobs.

    ``runner`` is anything runner-shaped, including a
    :class:`~repro.mapreduce.service.TenantClient`; multi-tenant
    callers pass a per-tenant ``workdir`` so pipelines never collide on
    HDFS paths.  Note the jobs of a DJ-Cluster *clustering* run are
    uncacheable by the service's result cache (the R-tree handle in the
    distributed cache has no stable fingerprint) — correctness over hit
    rate (``docs/JOBSERVICE.md``).
    """
    conf = Configuration(
        {
            "djcluster.speed_threshold_ms": params.speed_threshold_ms,
            "djcluster.dedup_tolerance_m": params.dedup_tolerance_m,
        }
    )
    runner.hdfs.delete(f"{workdir}/stationary", missing_ok=True)
    runner.hdfs.delete(f"{workdir}/preprocessed", missing_ok=True)
    pipeline = JobPipeline(
        name=f"{name_prefix}-preprocessing",
        stages=[
            lambda src: JobSpec(
                name=f"{name_prefix}-filter-moving",
                mapper=SpeedFilterMapper,
                input_paths=[src],
                output_path=f"{workdir}/stationary",
                conf=conf,
                map_cost_factor=0.8,
            ),
            lambda src: JobSpec(
                name=f"{name_prefix}-remove-duplicates",
                mapper=DeduplicateMapper,
                input_paths=[src],
                output_path=f"{workdir}/preprocessed",
                conf=conf,
                map_cost_factor=0.5,
            ),
        ]
    )
    return pipeline.run(runner, input_path)


def run_djcluster_mapreduce(
    runner: JobRunner,
    input_path: str,
    params: DJClusterParams | None = None,
    n_rtree_partitions: int | None = None,
    rtree_curve: str = "hilbert",
    workdir: str = "tmp/djcluster",
    history_path: str | None = None,
    use_persistent_index: bool = True,
    name_prefix: str = "dj",
) -> DJClusterResult:
    """The full MapReduced DJ-Cluster: preprocessing, R-tree build,
    neighborhood map phase and single-reducer merge.

    Cluster ids reference rows of the returned ``preprocessed`` array.
    Every constituent job traces into ``runner.history`` and the driver
    annotates each stage boundary, so the exported history (via
    ``history_path`` or ``runner.history.save``) shows where the three
    phases spend their simulated time.

    By default the neighborhood phase reads the **shared persistent
    index**: the build goes through the
    :class:`~repro.index.persistent.IndexCatalog`, so a repeat run over
    the same preprocessed dataset version reuses the persisted pages
    with zero build jobs, and the mappers receive a portable page-set
    broadcast instead of a per-job pickled tree.  The facade answers are
    byte-identical to the in-memory tree (the differential suite in
    ``tests/index`` proves it), so clusters do not change.
    ``use_persistent_index=False`` keeps the legacy per-job in-memory
    build — retained as the reference path for equivalence tests.
    """
    if params is None:
        params = DJClusterParams()
    hdfs = runner.hdfs
    pre = run_preprocessing_pipeline(
        runner, input_path, params, workdir, name_prefix=name_prefix
    )
    preprocessed_path = pre.output_path
    prepared = hdfs.read_trace_array(preprocessed_path)
    n = len(prepared)
    if n == 0:
        if history_path is not None:
            runner.history.save(history_path)
        return DJClusterResult(
            prepared, [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), params,
            sim_seconds=pre.sim_seconds, stage_sim_seconds={"preprocessing": pre.sim_seconds},
        )

    if n_rtree_partitions is None:
        n_rtree_partitions = max(1, runner.cluster.total_reduce_slots() // 2)
    build_t0 = runner.history.clock
    if use_persistent_index:
        catalog = IndexCatalog(hdfs)
        index, _built = catalog.ensure(
            runner,
            preprocessed_path,
            n_partitions=n_rtree_partitions,
            curve=rtree_curve,
            max_entries=params.rtree_max_entries,
        )
        runner.cache.replace(RTREE_CACHE_KEY, index.to_portable())
    else:
        build = build_rtree_mapreduce(
            runner,
            preprocessed_path,
            n_partitions=n_rtree_partitions,
            curve=rtree_curve,
            max_entries=params.rtree_max_entries,
            workdir=f"{workdir}/rtree",
        )
        runner.cache.replace(RTREE_CACHE_KEY, build.tree)
    rtree_sim_seconds = runner.history.clock - build_t0

    conf = Configuration(
        {
            "djcluster.radius_m": params.radius_m,
            "djcluster.min_pts": params.min_pts,
        }
    )
    cluster_out = f"{workdir}/clusters"
    hdfs.delete(cluster_out, missing_ok=True)
    res = runner.run(
        JobSpec(
            name=f"{name_prefix}-neighborhood-merge",
            mapper=NeighborhoodMapper,
            reducer=MergeReducer,
            input_paths=[preprocessed_path],
            output_path=cluster_out,
            conf=conf,
            num_reducers=1,
            partitioner=ConstantKeyPartitioner(),
            map_cost_factor=2.5,  # per-trace R-tree lookups beat a scan
        )
    )
    clusters = [np.asarray(ids, dtype=np.int64) for _, ids in hdfs.read_records(cluster_out)]
    clusters.sort(key=lambda ids: (int(ids[0]), len(ids)))
    labels, noise = _label_clusters(n, clusters)
    stage_sim = {
        "preprocessing": pre.sim_seconds,
        # Clock delta over the build step: the MapReduce build's two jobs
        # on a catalog miss, 0.0 on a catalog hit (the reuse win).
        "rtree_build": rtree_sim_seconds,
        "neighborhood_merge": res.sim_seconds,
    }
    runner.history.emit(
        EventKind.DRIVER_ANNOTATION,
        res.job_name,
        runner.history.clock,
        driver="djcluster",
        n_clusters=len(clusters),
        n_noise=int(len(noise)),
        stage_sim_seconds={k: float(v) for k, v in stage_sim.items()},
    )
    if history_path is not None:
        runner.history.save(history_path)
    return DJClusterResult(
        prepared,
        clusters,
        noise,
        labels,
        params,
        sim_seconds=sum(stage_sim.values()),
        stage_sim_seconds=stage_sim,
    )
