"""Temporal down-sampling of mobility traces (Section V).

Down-sampling is a form of temporal aggregation: all traces falling in one
time window of size *t* are summarized by a single **representative**
trace.  Two techniques are implemented, matching Figures 2 and 3:

* ``UPPER`` — keep the trace closest to the *upper limit* of the window;
* ``MIDDLE`` — keep the trace closest to the *middle* of the window.

The MapReduce adaptation is a **map-only** job ("the reduce phase is not
necessary as sampling represents a computationally cheap operation and can
be performed in a single pass").  Each map task processes its chunk
independently; as in the paper's implementation, a time window whose
traces straddle a chunk boundary yields one representative per chunk —
a bounded artifact of the map-only design that the integration tests
quantify.

Windows are aligned per user on the epoch grid (window ``w`` covers
``[w*t, (w+1)*t)``), so runs are deterministic and independent of where a
trail starts.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.mapreduce.config import Configuration
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.job import JobSpec, Mapper
from repro.mapreduce.runner import JobResult, JobRunner
from repro.mapreduce.types import Chunk
from repro.observability.events import EventKind

__all__ = [
    "SamplingTechnique",
    "sample_array",
    "sample_trail",
    "sample_dataset",
    "SamplingMapper",
    "run_sampling_job",
    "UserCensusMapper",
    "run_sampling_census_job",
]


class SamplingTechnique(str, enum.Enum):
    """Representative-selection technique (Figures 2 and 3)."""

    UPPER = "upper"
    MIDDLE = "middle"

    @classmethod
    def parse(cls, value: "str | SamplingTechnique") -> "SamplingTechnique":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown sampling technique {value!r}; known: "
                f"{[t.value for t in cls]}"
            ) from None


def sample_array(
    array: TraceArray,
    window_s: float,
    technique: "str | SamplingTechnique" = SamplingTechnique.UPPER,
) -> TraceArray:
    """Down-sample a trace array: one representative per (user, window).

    Fully vectorized: traces are bucketed into windows, the per-trace
    distance to the window's reference instant is computed in one pass,
    and a single lexicographic sort picks each group's minimum.
    """
    technique = SamplingTechnique.parse(technique)
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    n = len(array)
    if n == 0:
        return array
    ts = array.timestamp
    windows = np.floor_divide(ts, window_s).astype(np.int64)
    # Reference instant inside each window (Fig. 2: end; Fig. 3: middle).
    if technique is SamplingTechnique.UPPER:
        reference = (windows + 1) * window_s
    else:
        reference = windows * window_s + window_s / 2.0
    delta = np.abs(ts - reference)
    # Group = (user, window); pick the argmin of delta per group.
    groups = np.stack([array.user_index.astype(np.int64), windows], axis=1)
    _, group_ids = np.unique(groups, axis=0, return_inverse=True)
    order = np.lexsort((delta, group_ids))
    sorted_groups = group_ids[order]
    first_of_group = np.ones(n, dtype=bool)
    first_of_group[1:] = sorted_groups[1:] != sorted_groups[:-1]
    winners = np.sort(order[first_of_group])
    return array[winners]


def sample_trail(
    trail: Trail,
    window_s: float,
    technique: "str | SamplingTechnique" = SamplingTechnique.UPPER,
) -> Trail:
    """Down-sample one trail (sequential reference path)."""
    return Trail(trail.user_id, sample_array(trail.traces, window_s, technique))


def sample_dataset(
    dataset: GeolocatedDataset,
    window_s: float,
    technique: "str | SamplingTechnique" = SamplingTechnique.UPPER,
) -> GeolocatedDataset:
    """Down-sample every trail of a dataset (sequential reference path)."""
    return dataset.map_trails(lambda t: sample_trail(t, window_s, technique))


class SamplingMapper(Mapper):
    """Map-only sampling over one chunk (vectorized).

    Conf keys (the paper's runtime arguments): ``sampling.window_s`` and
    ``sampling.technique``.
    """

    def run(self, chunk: Chunk, ctx) -> None:
        window_s = ctx.conf.get_float("sampling.window_s")
        technique = SamplingTechnique.parse(ctx.conf.get_str("sampling.technique", "upper"))
        sampled = sample_array(chunk.trace_array(), window_s, technique)
        if len(sampled):
            ctx.emit_array(sampled)


class UserCensusMapper(Mapper):
    """Per-user record counts over one chunk (vectorized).

    One ``np.unique`` pass over the chunk's user index yields each
    user's count; the job's declared
    :class:`~repro.mapreduce.aggregation.CountAggregation` folds the
    per-chunk counts into corpus totals, so a pre-agg-enabled runner
    ships one fixed-size envelope per (node, user) instead of one record
    per (chunk, user).
    """

    def run(self, chunk: Chunk, ctx) -> None:
        array = chunk.trace_array()
        if len(array) == 0:
            return
        idx, counts = np.unique(array.user_index, return_counts=True)
        for i, count in zip(idx.tolist(), counts.tolist()):
            ctx.emit(array.users[i], int(count), nbytes=16)


def run_sampling_census_job(
    runner: JobRunner,
    input_path: str,
    output_path: str,
    name: str = "sampling-census",
    num_reducers: int = 1,
    history_path: "str | None" = None,
) -> JobResult:
    """Count each user's surviving records (the down-sampling census).

    Sampling itself is map-only, so the natural follow-up question —
    *how many representatives did each user keep?* — is the corpus
    rollup this job answers.  Its reduce is declared as a
    :class:`~repro.mapreduce.aggregation.CountAggregation` (an exactly
    associative integer monoid), so on a pre-agg-enabled runner the
    shuffle moves fixed-size aggregate envelopes instead of per-chunk
    count records; with pre-aggregation disabled the same declaration
    degrades to an ordinary sum reducer with identical output.
    """

    from repro.mapreduce.aggregation import CountAggregation, CountSumReducer

    spec = JobSpec(
        name=name,
        mapper=UserCensusMapper,
        reducer=CountSumReducer,
        aggregation=CountAggregation,
        input_paths=[input_path],
        output_path=output_path,
        num_reducers=num_reducers,
        map_cost_factor=0.3,  # one unique() pass per chunk
    )
    result = runner.run(spec)
    runner.history.emit(
        EventKind.DRIVER_ANNOTATION,
        result.job_name,
        runner.history.clock,
        driver="sampling-census",
        users=result.counters.value(
            STANDARD.GROUP_TASK, STANDARD.REDUCE_OUTPUT_RECORDS
        ),
    )
    if history_path is not None:
        runner.history.save(history_path)
    return result


def run_sampling_job(
    runner: JobRunner,
    input_path: str,
    output_path: str,
    window_s: float,
    technique: "str | SamplingTechnique" = SamplingTechnique.UPPER,
    name: str = "sampling",
    history_path: "str | None" = None,
) -> JobResult:
    """Run the MapReduce sampling job (Section V's Hadoop application).

    The user specifies the window size, the technique and the input and
    output folders — exactly the parameters the paper lists.  The run's
    structured trace accumulates in ``runner.history``; pass
    ``history_path`` to also export it as a JSON/JSONL history file
    readable by ``python -m repro history``.

    ``runner`` is anything runner-shaped: a
    :class:`~repro.mapreduce.runner.JobRunner`, or a
    :class:`~repro.mapreduce.service.TenantClient` to run the job as
    one tenant of a shared :class:`~repro.mapreduce.service.JobService`
    (each ``run`` becomes a submit + fair-share-scheduled wait).
    """
    technique = SamplingTechnique.parse(technique)
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    conf = Configuration(
        {
            "sampling.window_s": window_s,
            "sampling.technique": technique.value,
        }
    )
    spec = JobSpec(
        name=name,
        mapper=SamplingMapper,
        input_paths=[input_path],
        output_path=output_path,
        conf=conf,
        map_cost_factor=0.6,  # cheaper per byte than a clustering map
    )
    result = runner.run(spec)
    runner.history.emit(
        EventKind.DRIVER_ANNOTATION,
        result.job_name,
        runner.history.clock,
        driver="sampling",
        technique=technique.value,
        window_s=float(window_s),
        records_kept=result.counters.value(
            STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS
        ),
    )
    if history_path is not None:
        runner.history.save(history_path)
    return result
