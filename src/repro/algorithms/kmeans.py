"""k-means clustering, sequential and MapReduced (Section VI, Figure 4).

MapReducing k-means "amounts to MapReducing each iteration of the
algorithm, thus implementing each k-means iteration as a MapReduce job":

* the **initialization** randomly picks ``k`` traces as initial centroids
  — computationally cheap, performed by the driver on a single node;
* the **map** phase assigns each mobility trace to the closest centroid
  (Algorithm 1);
* the **reduce** phase computes the new centroid of each cluster by
  averaging its assigned points (Algorithm 2);
* the **driver** iterates, writing a new ``clusters-i`` directory per
  iteration, until centroids move less than ``convergencedelta`` or
  ``maxIter`` is reached (Algorithm 3, Table II's runtime arguments).

The optional **combiner** implements the related-work speed-up: partial
per-cluster sums computed mapper-side, so only ``k`` small records per map
task cross the shuffle instead of the whole dataset (ablation X3).

Mappers are vectorized: one broadcasted distance evaluation per chunk
assigns every trace at once; per-cluster point blocks are emitted so the
shuffle-byte accounting still reflects the paper's per-trace intermediate
volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.distance import METRIC_COST, get_metric, pairwise
from repro.mapreduce.aggregation import Aggregation
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.types import Chunk
from repro.observability.events import EventKind

__all__ = [
    "assign_points",
    "kmeans_sequential",
    "run_kmeans_mapreduce",
    "KMeansAggregation",
    "KMeansResult",
    "KMeansIterationStats",
    "CENTROIDS_CACHE_KEY",
]

#: Distributed-cache key the driver uses to publish current centroids.
CENTROIDS_CACHE_KEY = "kmeans.centroids"

#: Modelled bytes of one shuffled (cluster, trace) intermediate record.
_POINT_RECORD_BYTES = 16


def assign_points(points: np.ndarray, centroids: np.ndarray, metric: str) -> np.ndarray:
    """Index of the closest centroid for each (lat, lon) row.

    Ties break toward the lowest centroid index (NumPy ``argmin``), which
    both the sequential and MapReduce paths share, so their assignments
    are bit-identical given identical centroids.
    """
    distances = pairwise(metric, points, centroids)
    return np.argmin(distances, axis=1)


def _update_centroids(
    points: np.ndarray, assignment: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Mean of each cluster's points; empty clusters keep their centroid."""
    k = len(centroids)
    sums = np.zeros((k, 2))
    np.add.at(sums, assignment, points)
    counts = np.bincount(assignment, minlength=k).astype(np.float64)
    new = centroids.copy()
    nonempty = counts > 0
    new[nonempty] = sums[nonempty] / counts[nonempty, None]
    return new


def _init_centroids(
    points: np.ndarray, k: int, seed: int, method: str = "random", metric: str = "squared_euclidean"
) -> np.ndarray:
    """Pick k initial centroids.

    ``"random"`` is the paper's initialization (k distinct input points,
    chosen uniformly — cheap, done by the driver on a single node).
    ``"kmeans++"`` is the D² seeding of Arthur & Vassilvitskii: each next
    centroid is drawn proportionally to its squared distance from the
    closest centroid so far — the classic fix for the paper's noted
    sensitivity of k-means "to changes in the input conditions".
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(points) < k:
        raise ValueError(f"cannot pick {k} centroids from {len(points)} points")
    rng = np.random.default_rng(seed)
    if method == "random":
        idx = rng.choice(len(points), size=k, replace=False)
        return points[idx].copy()
    if method == "kmeans++":
        fn = get_metric(metric)
        chosen = [int(rng.integers(0, len(points)))]
        best_d = np.asarray(
            fn(points[:, 0], points[:, 1], points[chosen[0], 0], points[chosen[0], 1])
        )
        for _ in range(1, k):
            weights = np.maximum(best_d, 0.0)
            total = weights.sum()
            if total <= 0:  # all points coincide with a centroid
                remaining = np.setdiff1d(np.arange(len(points)), chosen)
                pick = int(rng.choice(remaining))
            else:
                pick = int(rng.choice(len(points), p=weights / total))
            chosen.append(pick)
            d_new = np.asarray(
                fn(points[:, 0], points[:, 1], points[pick, 0], points[pick, 1])
            )
            best_d = np.minimum(best_d, d_new)
        return points[chosen].copy()
    raise ValueError(f"unknown init method {method!r}; known: random, kmeans++")


@dataclass
class KMeansIterationStats:
    """Observability record for one MapReduce k-means iteration."""

    iteration: int
    sim_seconds: float
    shuffle_bytes: int
    max_centroid_move: float
    map_tasks: int
    #: Task attempts that crashed and were retried this iteration
    #: (nonzero only under failure injection / chaos schedules).
    failed_attempts: int = 0


@dataclass
class KMeansResult:
    """Final clustering plus per-iteration history."""

    centroids: np.ndarray
    n_iterations: int
    converged: bool
    inertia: float
    history: list[KMeansIterationStats] = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.centroids)

    @property
    def total_sim_seconds(self) -> float:
        return sum(s.sim_seconds for s in self.history)

    @property
    def mean_iteration_sim_seconds(self) -> float:
        if not self.history:
            return 0.0
        return self.total_sim_seconds / len(self.history)


def _inertia(points: np.ndarray, centroids: np.ndarray, metric: str) -> float:
    d = pairwise(metric, points, centroids)
    return float(d.min(axis=1).sum())


def _hdfs_inertia(hdfs, path: str, centroids: np.ndarray, metric: str) -> float:
    """Inertia of a stored corpus, one chunk resident at a time.

    The driver must never materialize the whole dataset: under a memory
    budget that would defeat the paged chunk store, and even unbudgeted
    the broadcasted full-corpus distance matrix dwarfs every other
    allocation of the run.  Chunk partials accumulate in float64, so the
    result matches the one-shot evaluation to rounding.
    """
    total = 0.0
    for chunk in hdfs.chunks(path):
        points = chunk.trace_array().coordinates()
        if len(points):
            d = pairwise(metric, points, centroids)
            total += float(d.min(axis=1).sum())
    return total


def kmeans_sequential(
    points: np.ndarray,
    k: int,
    metric: str = "squared_euclidean",
    convergence_delta: float = 1e-4,
    max_iter: int = 150,
    seed: int = 0,
    initial_centroids: np.ndarray | None = None,
    init: str = "random",
) -> KMeansResult:
    """The classic single-node k-means (GEPETO's original implementation).

    ``convergence_delta`` bounds the largest centroid displacement (in the
    chosen metric) below which the clustering is declared stable, matching
    the ``convergencedelta`` runtime argument of Table II.  ``init``
    selects ``"random"`` (the paper) or ``"kmeans++"`` seeding.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    get_metric(metric)
    centroids = (
        np.array(initial_centroids, dtype=np.float64, copy=True)
        if initial_centroids is not None
        else _init_centroids(points, k, seed, init, metric)
    )
    if centroids.shape != (k, 2):
        raise ValueError(f"initial centroids must be ({k}, 2)")
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        assignment = assign_points(points, centroids, metric)
        new_centroids = _update_centroids(points, assignment, centroids)
        move = _max_move(centroids, new_centroids, metric)
        centroids = new_centroids
        if move <= convergence_delta:
            converged = True
            break
    return KMeansResult(
        centroids=centroids,
        n_iterations=iteration,
        converged=converged,
        inertia=_inertia(points, centroids, metric),
    )


def _max_move(old: np.ndarray, new: np.ndarray, metric: str) -> float:
    fn = get_metric(metric)
    moves = fn(old[:, 0], old[:, 1], new[:, 0], new[:, 1])
    return float(np.max(np.atleast_1d(moves))) if len(old) else 0.0


class KMeansMapper(Mapper):
    """Assignment step (Algorithm 1), vectorized over the chunk.

    Loads current centroids from the distributed cache in ``setup`` (the
    paper's ``centroids <- load from file``), assigns every trace with one
    broadcasted distance computation, and emits per-cluster point blocks
    whose modelled size equals the per-trace intermediate volume.
    """

    def setup(self, ctx) -> None:
        self._centroids = np.asarray(ctx.cache.get(CENTROIDS_CACHE_KEY), dtype=np.float64)
        self._metric = ctx.conf.get_str("kmeans.distance", "squared_euclidean")

    def run(self, chunk: Chunk, ctx) -> None:
        points = chunk.trace_array().coordinates()
        if len(points) == 0:
            return
        assignment = assign_points(points, self._centroids, self._metric)
        for cid in np.unique(assignment):
            block = points[assignment == cid]
            ctx.emit(
                int(cid),
                block,
                nbytes=len(block) * _POINT_RECORD_BYTES,
                n_records=len(block),
            )


class KMeansCombiner(Reducer):
    """Mapper-local partial sums (the related-work combiner speed-up).

    Folds each point block into ``(sum_lat_lon, count)`` so only one tiny
    record per (map task, cluster) reaches the shuffle.
    """

    def reduce(self, key, values, ctx) -> None:
        total = np.zeros(2)
        count = 0
        for block in values:
            total += block.sum(axis=0)
            count += len(block)
        ctx.emit(key, (total, count), nbytes=24)


class KMeansAggregation(Aggregation):
    """The update step declared as a monoid: ``(sum_lat_lon, count)``.

    The partial is exactly the combiner's record — a per-cluster
    coordinate sum plus a point count — but declared as an
    :class:`~repro.mapreduce.aggregation.Aggregation` the runner can
    pre-aggregate worker-side and ship through the metadata-only
    shuffle: one 24-byte envelope per (node, cluster) crosses the
    network instead of one record per (map task, cluster).
    ``finalize`` mirrors :class:`KMeansReducer` (including the
    empty-cluster skip), so both paths emit the same records.
    """

    #: sum_lat + sum_lon (float64) + count, matching the combiner's
    #: modelled 24-byte record.
    envelope_nbytes = 24

    def zero(self):
        return (np.zeros(2), 0)

    def lift(self, key, block):
        return (block.sum(axis=0), len(block))

    def merge(self, acc, partial):
        return (acc[0] + partial[0], acc[1] + partial[1])

    def finalize(self, key, acc, ctx) -> None:
        total, count = acc
        if count == 0:
            return
        centroid = total / count
        ctx.emit(int(key), (float(centroid[0]), float(centroid[1]), int(count)))

    def lift_pairs(self, pairs):
        # One block.sum per emitted block — the same NumPy reduction the
        # combiner performs, folded per cluster id in arrival order (the
        # mapper emits each cluster at most once per task, so this is
        # trivially bit-identical to the object loop).
        acc: dict[int, tuple] = {}
        for key, block in pairs:
            partial = (block.sum(axis=0), len(block))
            acc[key] = self.merge(acc[key], partial) if key in acc else partial
        return [(key, acc[key]) for key in sorted(acc)]


class KMeansReducer(Reducer):
    """Update step (Algorithm 2): average each cluster's points.

    Accepts both raw point blocks (no combiner) and ``(sum, count)``
    partials (combiner enabled).
    """

    def reduce(self, key, values, ctx) -> None:
        total = np.zeros(2)
        count = 0
        for value in values:
            if isinstance(value, tuple):
                partial_sum, partial_count = value
                total += partial_sum
                count += partial_count
            else:
                total += value.sum(axis=0)
                count += len(value)
        if count == 0:
            return
        centroid = total / count
        ctx.emit(int(key), (float(centroid[0]), float(centroid[1]), int(count)))


def run_kmeans_mapreduce(
    runner: JobRunner,
    input_path: str,
    k: int,
    distance: str = "squared_euclidean",
    convergence_delta: float = 1e-4,
    max_iter: int = 150,
    seed: int = 0,
    initial_centroids: np.ndarray | None = None,
    init: str = "random",
    use_combiner: bool = False,
    use_aggregation: bool = False,
    num_reducers: int | None = None,
    workdir: str = "tmp/kmeans",
    history_path: str | None = None,
    name_prefix: str = "kmeans",
) -> KMeansResult:
    """The k-means driver (Algorithm 3): one MapReduce job per iteration.

    Each iteration writes a ``{workdir}/clusters-{i}`` file holding the
    new centroids (Figure 4's per-iteration clusters directory) and
    republished them in the distributed cache for the next map phase.

    ``use_combiner`` enables the object-level combiner (ablation X3);
    ``use_aggregation`` declares :class:`KMeansAggregation` on each
    iteration's job, unlocking map-side vectorized pre-aggregation and
    the metadata-only shuffle on runners with ``preagg`` enabled (the
    shuffle-byte minimization benchmark).  The two knobs compose: a
    runner with ``preagg=False`` falls back from the aggregation to the
    combiner (if enabled) or the raw reducer.

    Every iteration's job emits its full event stream into
    ``runner.history`` and the driver adds one ``driver_annotation``
    event per iteration (centroid movement, convergence), so the history
    file is the per-iteration trace Table III's analysis needs; pass
    ``history_path`` to export it (``.json``/``.jsonl``).

    ``runner`` may also be a
    :class:`~repro.mapreduce.service.TenantClient`: the per-iteration
    centroid publishes then touch only that tenant's distributed cache,
    and each iteration's job is snapshotted at submit time, so
    concurrent tenants iterating on the same input never see each
    other's centroids (``docs/JOBSERVICE.md``).

    ``name_prefix`` namespaces the per-iteration job names
    (``{name_prefix}-iter-{i}``) so several runs can share one history
    without colliding — the streaming layer passes a per-window prefix.
    """
    get_metric(distance)
    hdfs = runner.hdfs
    if initial_centroids is not None:
        centroids = np.array(initial_centroids, dtype=np.float64, copy=True)
    else:
        # Seeding is the one step that wants the corpus in hand; with
        # explicit centroids the driver never materializes it at all.
        all_points = hdfs.read_trace_array(input_path).coordinates()
        centroids = _init_centroids(all_points, k, seed, init, distance)
        del all_points
    if centroids.shape != (k, 2):
        raise ValueError(f"initial centroids must be ({k}, 2)")

    conf = Configuration({"kmeans.distance": distance, "kmeans.k": k})
    cost_factor = METRIC_COST.get(distance, 1.0)
    history: list[KMeansIterationStats] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        runner.cache.replace(CENTROIDS_CACHE_KEY, centroids)
        out_path = f"{workdir}/clusters-{iteration}"
        hdfs.delete(out_path, missing_ok=True)
        result = runner.run(
            JobSpec(
                name=f"{name_prefix}-iter-{iteration}",
                mapper=KMeansMapper,
                reducer=KMeansReducer,
                combiner=KMeansCombiner if use_combiner else None,
                aggregation=KMeansAggregation if use_aggregation else None,
                input_paths=[input_path],
                output_path=out_path,
                conf=conf,
                num_reducers=num_reducers or min(k, runner.cluster.total_reduce_slots()),
                map_cost_factor=cost_factor,
            )
        )
        new_centroids = centroids.copy()
        for cid, (lat, lon, _count) in hdfs.read_records(out_path):
            new_centroids[int(cid)] = (lat, lon)
        move = _max_move(centroids, new_centroids, distance)
        centroids = new_centroids
        history.append(
            KMeansIterationStats(
                iteration=iteration,
                sim_seconds=result.sim_seconds,
                shuffle_bytes=result.counters.value(
                    STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES
                ),
                max_centroid_move=move,
                map_tasks=result.n_map_tasks,
                failed_attempts=result.counters.value(
                    STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS
                ),
            )
        )
        converged_now = move <= convergence_delta
        runner.history.emit(
            EventKind.DRIVER_ANNOTATION,
            result.job_name,
            runner.history.clock,
            driver="kmeans",
            iteration=iteration,
            max_centroid_move=float(move),
            converged=converged_now,
            sim_seconds=result.sim_seconds,
        )
        if converged_now:
            converged = True
            break
    if history_path is not None:
        runner.history.save(history_path)
    return KMeansResult(
        centroids=centroids,
        n_iterations=iteration,
        converged=converged,
        inertia=_hdfs_inertia(hdfs, input_path, centroids, distance),
        history=history,
    )
