"""The paper's MapReduced GEPETO algorithms.

Each module pairs a **sequential reference implementation** (the original
GEPETO behaviour, used as the correctness baseline in tests and benches)
with its **MapReduce adaptation** (Sections V–VII):

* :mod:`repro.algorithms.sampling` — temporal down-sampling, map-only.
* :mod:`repro.algorithms.kmeans` — one MapReduce job per k-means
  iteration, optional combiner.
* :mod:`repro.algorithms.djcluster` — DJ-Cluster: two pipelined map-only
  preprocessing jobs, an R-tree-backed neighborhood map phase and a
  single-reducer merge phase.
"""

from repro.algorithms.sampling import (
    SamplingTechnique,
    sample_trail,
    sample_dataset,
    sample_array,
    SamplingMapper,
    run_sampling_job,
)
from repro.algorithms.kmeans import (
    kmeans_sequential,
    run_kmeans_mapreduce,
    KMeansResult,
    KMeansIterationStats,
    assign_points,
)
from repro.algorithms.djcluster import (
    DJClusterParams,
    DJClusterResult,
    filter_moving_traces,
    remove_redundant_traces,
    preprocess_array,
    djcluster_sequential,
    run_djcluster_mapreduce,
    run_preprocessing_pipeline,
)

__all__ = [
    "SamplingTechnique",
    "sample_trail",
    "sample_dataset",
    "sample_array",
    "SamplingMapper",
    "run_sampling_job",
    "kmeans_sequential",
    "run_kmeans_mapreduce",
    "KMeansResult",
    "KMeansIterationStats",
    "assign_points",
    "DJClusterParams",
    "DJClusterResult",
    "filter_moving_traces",
    "remove_redundant_traces",
    "preprocess_array",
    "djcluster_sequential",
    "run_djcluster_mapreduce",
    "run_preprocessing_pipeline",
]
