"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Report output is routinely piped into `head`/`less`; behave
        # like a Unix filter instead of dumping a traceback.  Redirect
        # stdout to devnull so the interpreter's final flush of the
        # closed pipe cannot raise again (python.org BrokenPipeError
        # recipe), and exit with SIGPIPE's conventional status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
