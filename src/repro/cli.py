"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the :class:`~repro.toolkit.Gepeto` facade so a
data curator can run the standard workflow — generate/load, inspect,
sample, attack, sanitize — without writing Python.  Datasets on disk use
the GeoLife directory layout (``<root>/<user>/Trajectory/*.plt``).

Commands
--------
``generate``   synthesize a GeoLife-like corpus to a directory
``info``       corpus statistics (users, traces, span, bounding box)
``visualize``  ASCII density map
``sample``     temporal down-sampling (Section V)
``attack``     POI inference, or the MapReduce linkage attack (docs/ATTACKS.md)
``sanitize``   apply a geo-sanitization mechanism
``sweep``      privacy-vs-utility frontier over sanitizer cells (docs/ATTACKS.md)
``history``    render a job-history trace report (docs/OBSERVABILITY.md)
``chaos``      seeded fault-injection campaign over a driver (docs/CHAOS.md)
``bench``      wall-clock benchmark of the execution backends (docs/PERFORMANCE.md)
``submit``     submit one job to a JobService and trace its future (docs/JOBSERVICE.md)
``service``    multi-tenant campaign over the algorithm drivers (docs/JOBSERVICE.md)
``query``      build/reuse a persistent R-tree and serve queries from it (docs/SERVING.md)
``stream``     micro-batch streaming run over a simulated feed (docs/STREAMING.md)
"""

from __future__ import annotations

import argparse
import datetime as _dt
import math
import sys

from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.poi import poi_attack
from repro.geo.geolife import read_geolife_dataset, write_geolife_dataset
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.sanitization import (
    DonutMask,
    GaussianMask,
    PlanarLaplaceMask,
    Pseudonymizer,
    RoundingMask,
    SpatialAggregator,
    SpatialCloaking,
    TemporalAggregator,
    UniformNoiseMask,
)
from repro.viz import ascii_density_map, cluster_summary_table

__all__ = ["main", "build_parser", "parse_mechanism"]


def parse_mechanism(spec: str):
    """Parse a ``name:param`` mechanism spec into a Sanitizer.

    Supported: ``gaussian:<sigma_m>``, ``uniform:<radius_m>``,
    ``donut:<r_min>-<r_max>``, ``rounding:<cell_m>``,
    ``aggregate:<cell_m>``, ``sample:<window_s>``, ``cloak:<k>``,
    ``pseudonymize[:<seed>]``.
    """
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    try:
        if name == "donut":
            r_min, _, r_max = arg.partition("-")
            return DonutMask(float(r_min), float(r_max))
        if name == "laplace":
            return PlanarLaplaceMask(float(arg))
        if name == "gaussian":
            return GaussianMask(float(arg))
        if name == "uniform":
            return UniformNoiseMask(float(arg))
        if name == "rounding":
            return RoundingMask(float(arg))
        if name == "aggregate":
            return SpatialAggregator(float(arg))
        if name == "sample":
            return TemporalAggregator(float(arg))
        if name == "cloak":
            return SpatialCloaking(k=int(arg))
        if name == "pseudonymize":
            return Pseudonymizer(seed=int(arg) if arg else 0)
    except ValueError as exc:
        raise SystemExit(f"bad mechanism parameter in {spec!r}: {exc}")
    raise SystemExit(
        f"unknown mechanism {name!r}; known: gaussian, uniform, donut, "
        "laplace, rounding, aggregate, sample, cloak, pseudonymize"
    )


def build_parser() -> argparse.ArgumentParser:
    from repro.mapreduce.config import BACKENDS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="GEPETO-MR: privacy analysis of mobility traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a GeoLife-like corpus")
    gen.add_argument("--out", required=True, help="output directory (GeoLife layout)")
    gen.add_argument("--users", type=int, default=5)
    gen.add_argument("--days", type=int, default=2)
    gen.add_argument("--seed", type=int, default=2013)

    info = sub.add_parser("info", help="corpus statistics")
    info.add_argument("--in", dest="input", required=True)
    info.add_argument(
        "--detailed",
        action="store_true",
        help="add radius of gyration and logging-interval statistics",
    )

    viz = sub.add_parser("visualize", help="ASCII density map")
    viz.add_argument("--in", dest="input", required=True)
    viz.add_argument("--width", type=int, default=72)
    viz.add_argument("--height", type=int, default=24)

    samp = sub.add_parser("sample", help="temporal down-sampling (Section V)")
    samp.add_argument("--in", dest="input", required=True)
    samp.add_argument("--out", required=True)
    samp.add_argument("--window", type=float, default=60.0, help="seconds")
    samp.add_argument("--technique", choices=["upper", "middle"], default="upper")

    atk = sub.add_parser(
        "attack",
        help="POI inference attack, or the MapReduce linkage attack",
        description=(
            "Default mode: the serial POI inference attack (Section VII "
            "+ labelling).  With --linkage the corpus is split in time "
            "into training/pseudonymized halves and the MapReduce "
            "de-anonymization attack links them (docs/ATTACKS.md); "
            "--linkage --selfcheck instead proves the MR attack "
            "byte-identical to the serial reference on every backend."
        ),
    )
    atk.add_argument("--in", dest="input", required=False)
    atk.add_argument("--user", help="restrict to one user id")
    atk.add_argument("--radius", type=float, default=100.0, help="metres")
    atk.add_argument("--min-pts", type=int, default=10)
    atk.add_argument(
        "--semantic",
        action="store_true",
        help="also label places semantically (home/work/lunch/leisure)",
    )
    atk.add_argument(
        "--linkage",
        action="store_true",
        help="run the MapReduce linkage attack on a time-split of --in "
        "instead of the per-user POI report",
    )
    atk.add_argument(
        "--selfcheck",
        action="store_true",
        help="with --linkage: verify MR ≡ serial attack on every "
        "backend (no --in needed); exit non-zero on divergence",
    )
    atk.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="serial",
        help="execution backend for --linkage (default serial)",
    )
    atk.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="optional per-node memory budget for --linkage (spills to disk)",
    )
    atk.add_argument(
        "--max-match-dist",
        type=float,
        default=500.0,
        help="POI match distance in metres for --linkage (default 500)",
    )
    atk.add_argument(
        "--max-pois",
        type=int,
        default=8,
        help="fingerprint size cap for --linkage (default 8)",
    )
    atk.add_argument(
        "--history", help="with --linkage: export the job history here"
    )

    san = sub.add_parser("sanitize", help="apply a geo-sanitization mechanism")
    san.add_argument("--in", dest="input", required=True)
    san.add_argument("--out", required=True)
    san.add_argument(
        "--mechanism",
        required=True,
        help="e.g. gaussian:200, rounding:500, sample:600, cloak:3, pseudonymize:7",
    )

    swp = sub.add_parser(
        "sweep",
        help="privacy-vs-utility frontier over sanitizer cells",
        description=(
            "Runs the MapReduce linkage attack against one sanitized "
            "release per --mechanisms spec, every cell a tenant of one "
            "fair-share JobService, and renders the privacy-vs-utility "
            "frontier (docs/ATTACKS.md).  Reads a GeoLife corpus with "
            "--in (split in time into training/target) or synthesizes a "
            "linkage corpus with --users."
        ),
    )
    swp.add_argument("--in", dest="input", help="GeoLife corpus to sweep over")
    swp.add_argument(
        "--users", type=int, default=12,
        help="synthetic corpus size when --in is omitted (default 12)",
    )
    swp.add_argument("--seed", type=int, default=0, help="synthetic corpus seed")
    swp.add_argument(
        "--mechanisms",
        default="none,gaussian:100,gaussian:300,rounding:500,sample:600",
        help="comma-separated sanitizer specs; 'none' is the "
        "pseudonymize-only origin cell",
    )
    swp.add_argument(
        "--radius", type=float, default=None,
        help="DJ-Cluster radius in metres (default: matched to the corpus)",
    )
    swp.add_argument(
        "--min-pts", type=int, default=None,
        help="DJ-Cluster density floor (default: matched to the corpus)",
    )
    swp.add_argument(
        "--backend", choices=list(BACKENDS), default="serial",
        help="execution backend for the attack jobs (default serial)",
    )
    swp.add_argument("--out", help="write the frontier JSON document here")
    swp.add_argument(
        "--history", help="export the shared service's job history here"
    )

    hist = sub.add_parser(
        "history",
        help="render a Gantt/summary report from a job-history file",
        description=(
            "Reads a .json/.jsonl job-history file written by "
            "JobHistory.save (every JobRunner records one; algorithm "
            "drivers expose history_path=...) and renders per-job "
            "summaries: phase breakdown, critical path, straggler "
            "ranking, locality mix, combiner effectiveness, per-reducer "
            "shuffle bytes, and a per-task text Gantt timeline."
        ),
    )
    hist.add_argument(
        "file", nargs="?", help="history file (.json or .jsonl)"
    )
    hist.add_argument("--job", action="append", help="restrict to job name(s)")
    hist.add_argument(
        "--tenant",
        help="restrict to one tenant's jobs (service histories tag each "
        "job_start with its tenant)",
    )
    hist.add_argument(
        "--window",
        action="store_true",
        help="per-window/per-tenant rollups instead of per-job blocks "
        "(streaming histories tag each job_start with its stream and "
        "window index)",
    )
    hist.add_argument(
        "--no-gantt", action="store_true", help="omit the per-task timeline"
    )
    hist.add_argument(
        "--width", type=int, default=48, help="Gantt bar width in characters"
    )
    hist.add_argument(
        "--validate-only",
        action="store_true",
        help="only check the event-ordering guarantees, print nothing else",
    )
    hist.add_argument(
        "--selfcheck",
        action="store_true",
        help="trace a miniature deployment end to end and verify the "
        "history invariants (used by the CI smoke step)",
    )

    from repro.mapreduce.chaos import driver_names

    cha = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign over a MapReduce driver",
        description=(
            "Runs a driver three times on fresh simulated deployments — "
            "clean, under a seeded ChaosSchedule, and a same-seed replay "
            "— then reports whether the output stayed byte-identical "
            "under faults and the chaotic run is bit-reproducible "
            "(docs/CHAOS.md)."
        ),
    )
    cha.add_argument(
        "--driver",
        action="append",
        choices=driver_names(),
        help="driver(s) to campaign over (default: all)",
    )
    cha.add_argument("--seed", type=int, default=0, help="chaos schedule seed")
    cha.add_argument(
        "--crash-prob", type=float, default=0.15, help="per-attempt crash probability"
    )
    cha.add_argument(
        "--cache-prob", type=float, default=0.1,
        help="per-attempt distributed-cache load-failure probability",
    )
    cha.add_argument(
        "--shuffle-prob", type=float, default=0.1,
        help="per-reducer shuffle fetch-failure probability",
    )
    cha.add_argument(
        "--slow-prob", type=float, default=0.25,
        help="per-node straggler probability",
    )
    cha.add_argument(
        "--slow-factor", type=float, default=3.0,
        help="slowdown multiplier for straggler nodes",
    )
    cha.add_argument(
        "--node-loss", action="store_true",
        help="also kill one tasktracker+datanode mid-map-phase",
    )
    cha.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="run the campaign out-of-core under this memory budget "
        "(the report must be identical to an unbudgeted run)",
    )
    cha.add_argument("--users", type=int, default=3, help="synthetic corpus users")
    cha.add_argument("--days", type=int, default=1, help="synthetic corpus days")
    cha.add_argument("--workers", type=int, default=3, help="simulated worker nodes")
    cha.add_argument(
        "--history", help="export the chaotic run's job history (.json/.jsonl)"
    )
    cha.add_argument(
        "--selfcheck",
        action="store_true",
        help="run the fixed fault-heavy campaign over all drivers and "
        "verify equivalence + reproducibility (used by the CI smoke step)",
    )
    cha.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="execution backend to run the campaign on (the report must "
        "be identical for all of them)",
    )

    ben = sub.add_parser(
        "bench",
        help="wall-clock benchmark of the execution backends",
        description=(
            "Times the fixed-initial-centroid k-means driver on every "
            "execution backend over synthetic corpora, prints a table, "
            "and optionally writes the JSON document / checks it against "
            "a committed baseline (docs/PERFORMANCE.md)."
        ),
    )
    ben.add_argument(
        "--sizes",
        default=",".join(str(s) for s in (100_000, 1_000_000)),
        help="comma-separated corpus sizes in traces",
    )
    ben.add_argument(
        "--backends",
        default=",".join(BACKENDS),
        help="comma-separated subset of: " + ", ".join(BACKENDS),
    )
    ben.add_argument(
        "--iterations", type=int, default=2,
        help="timing repeats per cell; the best is kept",
    )
    ben.add_argument("--k", type=int, default=4, help="k-means cluster count")
    ben.add_argument("--max-iter", type=int, default=3, help="k-means iterations")
    ben.add_argument(
        "--workers", type=int, default=None,
        help="pool size for threads/processes (default: backend-specific)",
    )
    ben.add_argument("--out", help="write the JSON result document here")
    ben.add_argument(
        "--check", action="store_true",
        help="compare against --baseline and exit 1 on regression",
    )
    ben.add_argument(
        "--baseline", default=None,
        help="baseline JSON for --check (default: benchmarks/BENCH_backends.json)",
    )
    ben.add_argument(
        "--tolerance", type=float, default=0.25,
        help="fractional slowdown tolerated by --check (default 0.25)",
    )
    ben.add_argument(
        "--spill", action="store_true",
        help="benchmark out-of-core execution instead: the same run with "
        "and without a memory budget, wall-clock + peak RSS per cell "
        "(serial backend, combiner off; each cell in its own subprocess)",
    )
    ben.add_argument(
        "--budget-mb", type=float, default=8.0,
        help="memory budget for the --spill budgeted cells (default 8)",
    )
    ben.add_argument(
        "--multitenant", action="store_true",
        help="benchmark the multi-tenant JobService instead: a weighted "
        "tenant roster drains a mixed backlog under fair share; reports "
        "contended-window fairness, interleaved vs serial makespan, and "
        "the result-cache resubmission cell (fixed workload so the "
        "document doubles as a baseline; combine with --check/--out)",
    )
    ben.add_argument(
        "--query", action="store_true",
        help="benchmark the index serving path instead: persist the "
        "Figure-6 R-tree through the catalog under --budget-mb, prove "
        "the second ensure is a zero-job reuse hit, and answer a seeded "
        "point/range/radius/kNN workload byte-identically to the "
        "in-memory tree (fixed workload so the document doubles as a "
        "baseline; combine with --check/--out)",
    )
    ben.add_argument(
        "--stream", action="store_true",
        help="benchmark the streaming layer instead: a warm windowed run "
        "over a stationary 10^5-point corpus under fixed feed chaos, a "
        "cold control proving the warm start saves k-means iterations, "
        "the batch-vs-stream equivalence matrix on every backend, and a "
        "result-cache replay probe (fixed workload so the document "
        "doubles as a baseline; combine with --check/--out)",
    )
    ben.add_argument(
        "--shuffle", action="store_true",
        help="benchmark shuffle-byte minimization instead: the same "
        "10^6-trace k-means run with the object-level combiner vs the "
        "declared aggregation algebra (map-side vectorized pre-agg + "
        "metadata-only shuffle + locality-aware reduce placement) on "
        "every backend; gates the >=10x shuffle-byte reduction and "
        "per-mode byte-identical centroids (fixed workload so the "
        "document doubles as a baseline; combine with --check/--out)",
    )
    ben.add_argument(
        "--attack", action="store_true",
        help="benchmark the MapReduce linkage attack instead: an "
        "equivalence matrix proving the MR attack byte-identical to the "
        "serial reference on every backend, under a memory budget, and "
        "under a fixed chaos schedule, plus a timed 10^5-user scale cell "
        "whose persistent-index audit proves the candidate blocking "
        "lossless (fixed workload so the document doubles as a "
        "baseline; combine with --check/--out)",
    )

    smt = sub.add_parser(
        "submit",
        help="submit one job to a JobService and trace its future",
        description=(
            "The worked docs/JOBSERVICE.md example: builds a miniature "
            "simulated deployment, submits a sampling job through a "
            "JobService as one tenant, and prints the future's lifecycle "
            "(queued -> running -> done) plus the job summary.  With "
            "--resubmit the same spec is submitted a second time under a "
            "fresh output path, demonstrating the result cache: the "
            "second run is a hit and executes zero map tasks."
        ),
    )
    smt.add_argument("--users", type=int, default=3, help="synthetic corpus users")
    smt.add_argument("--days", type=int, default=1, help="synthetic corpus days")
    smt.add_argument("--seed", type=int, default=42, help="corpus seed")
    smt.add_argument("--tenant", default="analyst", help="tenant name to submit as")
    smt.add_argument(
        "--window", type=float, default=600.0, help="sampling window (seconds)"
    )
    smt.add_argument(
        "--resubmit", action="store_true",
        help="submit the identical spec again and show the cache hit",
    )
    smt.add_argument(
        "--history", help="export the service's job history (.json/.jsonl)"
    )

    svc = sub.add_parser(
        "service",
        help="multi-tenant campaign over the MapReduce algorithm drivers",
        description=(
            "Runs each driver solo on a clean deployment, then again with "
            "every tenant of a weighted roster submitting it concurrently "
            "through one shared JobService (optionally under a seeded "
            "chaos schedule), and verifies each tenant's output is "
            "byte-identical to the solo run.  Prints the per-driver "
            "verdicts and the service's fair-share report."
        ),
    )
    svc.add_argument(
        "--driver",
        action="append",
        choices=driver_names(),
        help="driver(s) to campaign over (default: all)",
    )
    svc.add_argument("--seed", type=int, default=0, help="chaos schedule seed")
    svc.add_argument(
        "--weights", default="alice=2,bob=1",
        help="tenant roster as name=weight pairs (default alice=2,bob=1)",
    )
    svc.add_argument(
        "--no-chaos", action="store_true",
        help="run fault-free instead of under the default chaos schedule",
    )
    svc.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="execution backend for the shared service",
    )
    svc.add_argument("--users", type=int, default=3, help="synthetic corpus users")
    svc.add_argument("--days", type=int, default=1, help="synthetic corpus days")
    svc.add_argument("--workers", type=int, default=3, help="simulated worker nodes")
    svc.add_argument(
        "--selfcheck",
        action="store_true",
        help="run the fixed two-tenant equivalence campaign over all "
        "drivers, with and without chaos (used by the CI smoke step)",
    )

    qry = sub.add_parser(
        "query",
        help="build/reuse a persistent R-tree index and serve queries",
        description=(
            "The worked docs/SERVING.md example: persists the Figure-6 "
            "MapReduce R-tree build as checksummed node pages in "
            "simulated HDFS under a memory budget, shows the second "
            "catalog ensure coming back as a zero-job reuse hit, then "
            "serves point/range/radius/kNN queries through a tenant's "
            "QueryEngine — zero map tasks per query — and verifies the "
            "answers byte-identical to the in-memory tree."
        ),
    )
    qry.add_argument(
        "--traces", type=int, default=50_000, help="synthetic corpus size"
    )
    qry.add_argument("--seed", type=int, default=0, help="corpus/workload seed")
    qry.add_argument(
        "--budget-mb", type=float, default=8.0,
        help="memory budget the index is served under (default 8)",
    )
    qry.add_argument(
        "--queries", type=int, default=12,
        help="seeded demo queries to serve (round-robin over the kinds)",
    )
    qry.add_argument("--tenant", default="analyst", help="tenant name to serve as")
    qry.add_argument(
        "--point", help="one point lookup as 'lat,lon' (replaces the demo mix)"
    )
    qry.add_argument(
        "--range",
        dest="range_query",
        help="one range query as 'min_lat,min_lon,max_lat,max_lon'",
    )
    qry.add_argument(
        "--radius-query", help="one radius query as 'lat,lon,metres'"
    )
    qry.add_argument("--knn", help="one kNN query as 'lat,lon,k'")
    qry.add_argument(
        "--no-verify", action="store_true",
        help="skip the in-memory reference build and byte-identity check",
    )
    qry.add_argument(
        "--history", help="export the serving job history (.json/.jsonl)"
    )

    strm = sub.add_parser(
        "stream",
        help="micro-batch streaming run over a simulated feed",
        description=(
            "The worked docs/STREAMING.md example: a StreamSource cuts a "
            "synthetic corpus into per-user feed batches on the simtime "
            "clock (optionally with chaos-driven late/lost/duplicate "
            "deliveries), a MicroBatcher seals fixed windows into HDFS "
            "datasets, and a StreamingJobManager runs the per-window "
            "analysis chain — sampling, warm-started k-means, DJ-Cluster "
            "POIs, a re-identification risk score — through a "
            "multi-tenant JobService, printing the rolling risk "
            "timeline.  A streaming run is byte-identical to the "
            "equivalent batch-job sequence; --selfcheck proves it."
        ),
    )
    strm.add_argument("--users", type=int, default=4, help="synthetic corpus users")
    strm.add_argument("--days", type=int, default=1, help="synthetic corpus days")
    strm.add_argument("--seed", type=int, default=11, help="corpus seed")
    strm.add_argument(
        "--window-s", type=float, default=3 * 3600.0,
        help="micro-batch window size in simtime seconds (default 10800)",
    )
    strm.add_argument(
        "--tenants", type=int, default=1,
        help="split the feeds round-robin over this many tenants "
        "sharing one JobService (default 1)",
    )
    strm.add_argument("--k", type=int, default=3, help="k-means cluster count")
    strm.add_argument(
        "--max-iter", type=int, default=8, help="k-means iteration cap per window"
    )
    strm.add_argument(
        "--sampling-window", type=float, default=1800.0,
        help="down-sampling window within each micro-batch (seconds)",
    )
    strm.add_argument(
        "--no-warm-start", action="store_true",
        help="cold-start k-means in every window instead of reusing the "
        "previous window's centroids",
    )
    strm.add_argument(
        "--late-prob", type=float, default=0.0,
        help="per-batch probability of a late delivery (next window)",
    )
    strm.add_argument(
        "--lost-prob", type=float, default=0.0,
        help="per-batch probability of a lost delivery",
    )
    strm.add_argument(
        "--dup-prob", type=float, default=0.0,
        help="per-batch probability of a duplicate delivery",
    )
    strm.add_argument(
        "--chaos-seed", type=int, default=0, help="feed-chaos schedule seed"
    )
    strm.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="execution backend for the service",
    )
    strm.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="run out-of-core under this memory budget",
    )
    strm.add_argument(
        "--out", help="write the risk-timeline JSON document here"
    )
    strm.add_argument(
        "--report", help="render a previously saved risk-timeline JSON and exit"
    )
    strm.add_argument(
        "--history", help="export the streaming run's job history (.json/.jsonl)"
    )
    strm.add_argument(
        "--selfcheck",
        action="store_true",
        help="run the fixed stream-vs-batch equivalence, chaos and "
        "warm-start checks (used by the CI smoke step)",
    )
    return parser


def _load(path: str):
    dataset = read_geolife_dataset(path)
    if dataset.num_users() == 0:
        raise SystemExit(f"no GeoLife data found under {path}")
    return dataset


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "generate":
        dataset, users = generate_dataset(
            SyntheticConfig(n_users=args.users, days=args.days, seed=args.seed)
        )
        written = write_geolife_dataset(dataset, args.out)
        print(
            f"wrote {len(dataset):,} traces for {dataset.num_users()} users "
            f"({len(written)} PLT files) under {args.out}"
        )
        return 0

    if args.command == "info":
        dataset = _load(args.input)
        flat = dataset.flat()
        lo, hi = flat.time_span()
        bbox = flat.bounding_box()
        print(f"users:  {dataset.num_users()}")
        print(f"traces: {len(flat):,}")
        print(
            "span:   "
            f"{_dt.datetime.fromtimestamp(lo, tz=_dt.timezone.utc):%Y-%m-%d %H:%M} .. "
            f"{_dt.datetime.fromtimestamp(hi, tz=_dt.timezone.utc):%Y-%m-%d %H:%M} UTC"
        )
        print(f"bbox:   lat [{bbox[0]:.4f}, {bbox[2]:.4f}]  lon [{bbox[1]:.4f}, {bbox[3]:.4f}]")
        if args.detailed:
            from repro.geo.stats import corpus_summary, user_stats

            summary = corpus_summary(dataset)
            print(
                f"median r_g: {summary['median_rg_m']:,.0f} m  "
                f"(p90 {summary['p90_rg_m']:,.0f} m); "
                f"median log interval: {summary['median_interval_s']:.1f} s"
            )
            for user in dataset.user_ids:
                s = user_stats(dataset.trail(user))
                print(
                    f"  user {user}: {s.n_traces:,} traces, "
                    f"r_g {s.radius_of_gyration_m:,.0f} m, "
                    f"interval {s.median_interval_s:.1f} s"
                )
        else:
            for user in dataset.user_ids:
                print(f"  user {user}: {len(dataset.trail(user)):,} traces")
        return 0

    if args.command == "visualize":
        dataset = _load(args.input)
        print(ascii_density_map(dataset, width=args.width, height=args.height))
        return 0

    if args.command == "sample":
        from repro.algorithms.sampling import sample_dataset

        dataset = _load(args.input)
        sampled = sample_dataset(dataset, args.window, args.technique)
        write_geolife_dataset(sampled, args.out)
        print(
            f"sampled {len(dataset):,} -> {len(sampled):,} traces "
            f"(window {args.window:.0f}s, {args.technique}) -> {args.out}"
        )
        return 0

    if args.command == "attack":
        if args.selfcheck:
            from repro.attacks.linkage_mr import run_attack_selfcheck

            return 0 if run_attack_selfcheck() else 1
        if not args.input:
            raise SystemExit("attack: provide --in (or --linkage --selfcheck)")
        if args.linkage:
            from repro.attacks.linkage_mr import (
                run_linkage_attack,
                split_linkage_corpus,
            )
            from repro.mapreduce.cluster import paper_cluster
            from repro.mapreduce.hdfs import SimulatedHDFS
            from repro.mapreduce.runner import JobRunner

            dataset = _load(args.input)
            train, target, truth = split_linkage_corpus(dataset.flat())
            if len(train) == 0 or len(target) == 0:
                raise SystemExit(
                    "attack: corpus too small to split into training/target halves"
                )
            budget = args.memory_budget_mb
            hdfs = SimulatedHDFS(paper_cluster(4), seed=0, memory_budget_mb=budget)
            hdfs.put_trace_array("input/train", train, record_bytes=64)
            hdfs.put_trace_array("input/target", target, record_bytes=64)
            runner = JobRunner(
                hdfs, executor=args.backend, memory_budget_mb=budget
            )
            try:
                outcome = run_linkage_attack(
                    runner,
                    "input/train",
                    "input/target",
                    truth,
                    params=DJClusterParams(
                        radius_m=args.radius, min_pts=args.min_pts
                    ),
                    max_pois=args.max_pois,
                    max_match_dist_m=args.max_match_dist,
                    history_path=args.history,
                )
            finally:
                runner.close()
            result = outcome.result
            linked = sum(1 for v in result.linkage.values() if v is not None)
            print(
                f"linkage attack: {outcome.n_train_fingerprints} training "
                f"fingerprints vs {result.n_targets} pseudonyms "
                f"({args.backend} backend)"
            )
            if result.n_targets <= 30:
                for pseud in sorted(result.linkage):
                    link = result.linkage[pseud]
                    mark = "" if truth.get(pseud) == link else "  (wrong)"
                    if link is None:
                        print(f"  {pseud:<16} -> unlinked")
                    else:
                        score = result.scores[pseud]
                        print(f"  {pseud:<16} -> {link}  (score {score:.4f}){mark}")
            exact = outcome.blocking_exact
            audit = (
                "audit off"
                if exact is None
                else ("blocking exact" if exact else "BLOCKING DROPPED PAIRS")
            )
            print(
                f"linked {linked}/{result.n_targets} "
                f"({result.success_rate:.2%} correct); scored "
                f"{outcome.pairs_scored:,} of {outcome.cross_product:,} "
                f"candidate pairs ({audit}); {outcome.sim_seconds:.1f} "
                "simulated seconds"
            )
            if args.history:
                print(f"job history exported to {args.history}")
            return 0
        dataset = _load(args.input)
        params = DJClusterParams(radius_m=args.radius, min_pts=args.min_pts)
        users = [args.user] if args.user else dataset.user_ids
        for user in users:
            if user not in dataset:
                raise SystemExit(f"unknown user {user!r}")
            pois = poi_attack(dataset.trail(user), params)
            print(f"\nuser {user}: {len(pois)} POIs")
            if pois:
                print(cluster_summary_table(pois))
            if args.semantic:
                from repro.attacks.semantics import label_places

                places, visits = label_places(dataset.trail(user))
                print(f"semantic places ({len(visits)} visits):")
                for p in sorted(places, key=lambda p: -p.total_dwell_s):
                    print(
                        f"  {p.label:<8} at ({p.latitude:.5f}, {p.longitude:.5f}) "
                        f"{p.n_visits} visits, {p.total_dwell_s / 3600:.1f} h"
                    )
        return 0

    if args.command == "sanitize":
        dataset = _load(args.input)
        sanitizer = parse_mechanism(args.mechanism)
        released = sanitizer.sanitize_dataset(dataset)
        write_geolife_dataset(released, args.out)
        print(
            f"applied {sanitizer!r}: {len(dataset):,} -> "
            f"{len(released.flat()):,} traces -> {args.out}"
        )
        return 0

    if args.command == "sweep":
        from repro.attacks.linkage_mr import (
            SYNTH_ATTACK_PARAMS,
            split_linkage_corpus,
            synthetic_linkage_corpus,
        )
        from repro.attacks.sweep import run_sweep

        mechanisms = [m.strip() for m in args.mechanisms.split(",") if m.strip()]
        if not mechanisms:
            raise SystemExit("sweep: provide at least one --mechanisms spec")
        if args.input:
            dataset = _load(args.input)
            train, target, truth = split_linkage_corpus(dataset.flat())
            defaults = DJClusterParams()
        else:
            train, target, truth = synthetic_linkage_corpus(
                args.users, seed=args.seed
            )
            defaults = SYNTH_ATTACK_PARAMS
        if len(train) == 0 or len(target) == 0:
            raise SystemExit(
                "sweep: corpus too small to split into training/target halves"
            )
        params = DJClusterParams(
            radius_m=args.radius if args.radius is not None else defaults.radius_m,
            min_pts=args.min_pts if args.min_pts is not None else defaults.min_pts,
        )
        try:
            frontier = run_sweep(
                train,
                target,
                truth,
                mechanisms,
                params=params,
                executor=args.backend,
                history_path=args.history,
            )
        except (ValueError, RuntimeError) as exc:
            raise SystemExit(f"sweep: {exc}")
        print(frontier.render())
        print()
        print(frontier.service_report)
        if args.out:
            print(f"frontier written to {frontier.save(args.out)}")
        if args.history:
            print(f"service history exported to {args.history}")
        return 0

    if args.command == "history":
        if args.selfcheck:
            from repro.observability.selfcheck import run_selfcheck

            return run_selfcheck()
        if not args.file:
            raise SystemExit("history: provide a history file or --selfcheck")
        from repro.observability.history import load_history
        from repro.observability.report import render_report, render_window_report

        try:
            history = load_history(args.file)
        except FileNotFoundError:
            raise SystemExit(f"no such history file: {args.file}")
        except ValueError as exc:
            raise SystemExit(f"cannot read {args.file}: {exc}")
        violations = history.validate()
        if args.validate_only:
            for violation in violations:
                print(f"violation: {violation}")
            print(
                f"{len(history)} events, {len(history.jobs())} jobs, "
                f"{len(violations)} ordering violation(s)"
            )
            return 1 if violations else 0
        if args.window:
            print(render_window_report(history, tenant=args.tenant))
        else:
            print(
                render_report(
                    history,
                    jobs=args.job,
                    gantt=not args.no_gantt,
                    width=args.width,
                    tenant=args.tenant,
                )
            )
        if violations:
            print(f"\nWARNING: {len(violations)} ordering violation(s); run --validate-only")
            return 1
        return 0

    if args.command == "chaos":
        from repro.mapreduce.chaos import (
            ChaosSchedule,
            run_chaos_campaign,
            run_chaos_selfcheck,
        )

        if args.selfcheck:
            return run_chaos_selfcheck()
        try:
            schedule = ChaosSchedule(
                seed=args.seed,
                crash_prob=args.crash_prob,
                cache_load_prob=args.cache_prob,
                shuffle_fetch_prob=args.shuffle_prob,
                slow_node_prob=args.slow_prob,
                slow_factor=args.slow_factor,
                node_loss_prob=1.0 if args.node_loss else 0.0,
            )
            report = run_chaos_campaign(
                drivers=args.driver,
                seed=args.seed,
                schedule=schedule,
                n_users=args.users,
                days=args.days,
                n_workers=args.workers,
                history_path=args.history,
                executor=args.backend,
                memory_budget_mb=args.memory_budget_mb,
            )
        except ValueError as exc:
            raise SystemExit(f"chaos: {exc}")
        print(report.render())
        if args.history:
            print(f"chaotic run history exported to {args.history}")
        return 0 if report.ok else 1

    if args.command == "bench":
        from repro.mapreduce.bench import (
            DEFAULT_ATTACK_OUT,
            DEFAULT_BASELINE,
            DEFAULT_MULTITENANT_OUT,
            DEFAULT_QUERY_OUT,
            DEFAULT_SHUFFLE_OUT,
            DEFAULT_SPILL_OUT,
            DEFAULT_STREAM_OUT,
            check_against_baseline,
            check_attack_against_baseline,
            check_attack_result,
            check_multitenant_against_baseline,
            check_multitenant_result,
            check_query_against_baseline,
            check_query_result,
            check_shuffle_against_baseline,
            check_shuffle_result,
            check_stream_against_baseline,
            check_stream_result,
            load_result,
            render_attack_result,
            render_multitenant_result,
            render_query_result,
            render_result,
            render_shuffle_result,
            render_spill_result,
            render_stream_result,
            run_attack_benchmark,
            run_backend_benchmark,
            run_multitenant_benchmark,
            run_query_benchmark,
            run_shuffle_benchmark,
            run_spill_benchmark,
            run_stream_benchmark,
            save_result,
        )

        if args.attack:
            try:
                backends = [b.strip() for b in args.backends.split(",") if b.strip()]
                doc = run_attack_benchmark(
                    backends=backends,
                    reps=args.iterations,
                    max_workers=args.workers,
                    budget_mb=args.budget_mb,
                )
            except (ValueError, RuntimeError) as exc:
                raise SystemExit(f"bench: {exc}")
            print(render_attack_result(doc))
            problems = check_attack_result(doc)
            if args.check:
                # Compare before (possibly) overwriting the baseline.
                baseline_path = args.baseline or DEFAULT_ATTACK_OUT
                try:
                    baseline = load_result(baseline_path)
                    problems += check_attack_against_baseline(doc, baseline)
                except FileNotFoundError:
                    print(f"(no baseline at {baseline_path}; intrinsic gates only)")
            if args.out or not args.check:
                # Generation mode writes the artifact; --check without
                # --out leaves the committed baseline untouched.
                out = args.out or DEFAULT_ATTACK_OUT
                print(f"result written to {save_result(doc, out)}")
            if problems:
                print("\nFAILED gates:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print("all linkage-attack gates passed")
            return 0

        if args.shuffle:
            try:
                backends = [b.strip() for b in args.backends.split(",") if b.strip()]
                doc = run_shuffle_benchmark(
                    backends=backends,
                    reps=args.iterations,
                    max_workers=args.workers,
                )
            except (ValueError, RuntimeError) as exc:
                raise SystemExit(f"bench: {exc}")
            print(render_shuffle_result(doc))
            problems = check_shuffle_result(doc)
            if args.check:
                # Compare before (possibly) overwriting the baseline.
                baseline_path = args.baseline or DEFAULT_SHUFFLE_OUT
                try:
                    baseline = load_result(baseline_path)
                    problems += check_shuffle_against_baseline(doc, baseline)
                except FileNotFoundError:
                    print(f"(no baseline at {baseline_path}; intrinsic gates only)")
            if args.out or not args.check:
                # Generation mode writes the artifact; --check without
                # --out leaves the committed baseline untouched.
                out = args.out or DEFAULT_SHUFFLE_OUT
                print(f"result written to {save_result(doc, out)}")
            if problems:
                print("\nFAILED gates:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print("all shuffle-byte gates passed")
            return 0

        if args.stream:
            try:
                doc = run_stream_benchmark()
            except (ValueError, RuntimeError) as exc:
                raise SystemExit(f"bench: {exc}")
            print(render_stream_result(doc))
            problems = check_stream_result(doc)
            if args.check:
                # Compare before (possibly) overwriting the baseline.
                baseline_path = args.baseline or DEFAULT_STREAM_OUT
                try:
                    baseline = load_result(baseline_path)
                    problems += check_stream_against_baseline(doc, baseline)
                except FileNotFoundError:
                    print(f"(no baseline at {baseline_path}; intrinsic gates only)")
            if args.out or not args.check:
                # Generation mode writes the artifact; --check without
                # --out leaves the committed baseline untouched.
                out = args.out or DEFAULT_STREAM_OUT
                print(f"result written to {save_result(doc, out)}")
            if problems:
                print("\nFAILED gates:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print("all streaming gates passed")
            return 0

        if args.query:
            try:
                sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
                doc = run_query_benchmark(sizes=sizes, budget_mb=args.budget_mb)
            except (ValueError, RuntimeError) as exc:
                raise SystemExit(f"bench: {exc}")
            print(render_query_result(doc))
            problems = check_query_result(doc)
            if args.check:
                # Compare before (possibly) overwriting the baseline.
                baseline_path = args.baseline or DEFAULT_QUERY_OUT
                try:
                    baseline = load_result(baseline_path)
                    problems += check_query_against_baseline(doc, baseline)
                except FileNotFoundError:
                    print(f"(no baseline at {baseline_path}; intrinsic gates only)")
            if args.out or not args.check:
                # Generation mode writes the artifact; --check without
                # --out leaves the committed baseline untouched.
                out = args.out or DEFAULT_QUERY_OUT
                print(f"result written to {save_result(doc, out)}")
            if problems:
                print("\nFAILED gates:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print("all serving gates passed")
            return 0

        if args.multitenant:
            try:
                doc = run_multitenant_benchmark()
            except (ValueError, RuntimeError) as exc:
                raise SystemExit(f"bench: {exc}")
            print(render_multitenant_result(doc))
            problems = check_multitenant_result(doc)
            if args.check:
                # Compare before (possibly) overwriting the baseline.
                baseline_path = args.baseline or DEFAULT_MULTITENANT_OUT
                try:
                    baseline = load_result(baseline_path)
                    problems += check_multitenant_against_baseline(doc, baseline)
                except FileNotFoundError:
                    print(f"(no baseline at {baseline_path}; intrinsic gates only)")
            if args.out or not args.check:
                # Generation mode writes the artifact; --check without
                # --out leaves the committed baseline untouched.
                out = args.out or DEFAULT_MULTITENANT_OUT
                print(f"result written to {save_result(doc, out)}")
            if problems:
                print("\nFAILED gates:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print("all fairness and result-cache gates passed")
            return 0

        if args.spill:
            try:
                sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
                doc = run_spill_benchmark(
                    sizes=sizes,
                    budget_mb=args.budget_mb,
                    k=args.k,
                    max_iter=args.max_iter,
                )
            except (ValueError, RuntimeError) as exc:
                raise SystemExit(f"bench: {exc}")
            print(render_spill_result(doc))
            out = args.out or DEFAULT_SPILL_OUT
            print(f"result written to {save_result(doc, out)}")
            return 0

        try:
            sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
            backends = [b.strip() for b in args.backends.split(",") if b.strip()]
            doc = run_backend_benchmark(
                sizes=sizes,
                backends=backends,
                iterations=args.iterations,
                k=args.k,
                max_iter=args.max_iter,
                max_workers=args.workers,
            )
        except (ValueError, RuntimeError) as exc:
            raise SystemExit(f"bench: {exc}")
        print(render_result(doc))
        if args.out:
            print(f"result written to {save_result(doc, args.out)}")
        if args.check:
            baseline_path = args.baseline or DEFAULT_BASELINE
            try:
                baseline = load_result(baseline_path)
            except FileNotFoundError:
                raise SystemExit(f"bench: no baseline at {baseline_path}")
            problems = check_against_baseline(doc, baseline, args.tolerance)
            if problems:
                print(f"\nREGRESSION vs {baseline_path}:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print(f"\nwithin tolerance of baseline {baseline_path}")
        return 0

    if args.command == "submit":
        from repro.algorithms.sampling import SamplingMapper
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.config import Configuration
        from repro.mapreduce.hdfs import SimulatedHDFS
        from repro.mapreduce.job import JobSpec
        from repro.mapreduce.service import JobService

        dataset, _ = generate_dataset(
            SyntheticConfig(n_users=args.users, days=args.days, seed=args.seed)
        )
        array = dataset.flat().sort_by_time()
        hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)
        hdfs.put_trace_array("input/traces", array, record_bytes=64)
        if args.window <= 0:
            raise SystemExit("submit: --window must be positive")
        conf = Configuration(
            {"sampling.window_s": args.window, "sampling.technique": "upper"}
        )

        def sampling_spec(name: str, out: str) -> JobSpec:
            return JobSpec(
                name=name,
                mapper=SamplingMapper,
                input_paths=["input/traces"],
                output_path=out,
                conf=conf,
                map_cost_factor=0.6,
            )

        # Paused service: the future is observably QUEUED before start().
        with JobService(hdfs, tenants={args.tenant: 1.0}, start=False) as service:
            future = service.submit(sampling_spec("sampling", "out/sampled"),
                                    tenant=args.tenant)
            print(
                f"submitted {future.job_name!r} as tenant {args.tenant!r}: "
                f"status={future.status}"
            )
            service.start()
            result = future.result()
            print(
                f"future resolved: status={future.status} "
                f"cache_hit={future.cache_hit}"
            )
            print(
                f"  {result.output_path}: {result.n_map_tasks} map task(s), "
                f"{result.n_reduce_tasks} reduce task(s), "
                f"{result.timing.total_s:.1f} sim s"
            )
            if args.resubmit:
                fut2 = service.submit(
                    sampling_spec("sampling-resubmit", "out/sampled-resubmit"),
                    tenant=args.tenant,
                )
                r2 = fut2.result()
                print(
                    f"resubmitted identical spec as {fut2.job_name!r}: "
                    f"cache_hit={fut2.cache_hit}, {r2.n_map_tasks} map task(s), "
                    f"setup charge {r2.timing.total_s:.1f} sim s"
                )
            print()
            print(service.report().render())
            if args.history:
                service.history.save(args.history)
                print(f"history exported to {args.history}")
        return 0

    if args.command == "service":
        from repro.mapreduce.chaos import run_multitenant_check

        def show(outcomes) -> bool:
            for o in outcomes:
                verdict = "identical" if o.ok else "DIVERGED"
                tenants_txt = ", ".join(sorted(o.signatures))
                chaos_txt = "chaos" if o.chaos_active else "fault-free"
                print(
                    f"  {o.driver:<10} [{chaos_txt}] tenants {tenants_txt}: "
                    f"outputs {verdict} to solo"
                )
            return all(o.ok for o in outcomes)

        if args.selfcheck:
            ok = True
            for with_chaos in (False, True):
                outcomes = run_multitenant_check(
                    seed=args.seed, with_chaos=with_chaos
                )
                ok = show(outcomes) and ok
            print(
                "service selfcheck OK: every tenant matched solo"
                if ok
                else "service selfcheck FAILED"
            )
            return 0 if ok else 1

        tenants: dict[str, float] = {}
        for part in args.weights.split(","):
            name, sep, weight = part.partition("=")
            if not sep:
                raise SystemExit(
                    f"service: bad --weights entry {part!r} (want name=weight)"
                )
            try:
                tenants[name.strip()] = float(weight)
            except ValueError:
                raise SystemExit(f"service: bad weight in {part!r}")
        try:
            outcomes = run_multitenant_check(
                drivers=args.driver,
                seed=args.seed,
                with_chaos=not args.no_chaos,
                tenants=tenants,
                n_users=args.users,
                days=args.days,
                n_workers=args.workers,
                executor=args.backend,
            )
        except ValueError as exc:
            raise SystemExit(f"service: {exc}")
        ok = show(outcomes)
        if outcomes:
            print()
            print(outcomes[-1].report)
        return 0 if ok else 1

    if args.command == "query":
        import numpy as np

        from repro.index.persistent import IndexCatalog
        from repro.index.rtree import Rect
        from repro.index.rtree_mr import build_rtree_mapreduce
        from repro.mapreduce.bench import _query_workload, synthetic_corpus
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.hdfs import MB, SimulatedHDFS
        from repro.mapreduce.runner import JobRunner
        from repro.mapreduce.service import JobService
        from repro.observability.events import EventKind

        def parse_floats(spec: str, n: int, what: str) -> tuple[float, ...]:
            parts = [p for p in spec.split(",") if p.strip()]
            if len(parts) != n:
                raise SystemExit(f"query: {what} wants {n} comma-separated values")
            try:
                values = tuple(float(p) for p in parts)
            except ValueError as exc:
                raise SystemExit(f"query: bad {what}: {exc}")
            if not all(math.isfinite(v) for v in values):
                raise SystemExit(f"query: {what} values must be finite, got {spec!r}")
            return values

        if args.traces < 1:
            raise SystemExit("query: --traces must be positive")
        if args.budget_mb is not None and args.budget_mb <= 0:
            raise SystemExit("query: --budget-mb must be positive")
        explicit: list[tuple[str, tuple[float, ...]]] = []
        if args.point:
            explicit.append(("point", parse_floats(args.point, 2, "--point")))
        if args.range_query:
            explicit.append(("range", parse_floats(args.range_query, 4, "--range")))
        if args.radius_query:
            explicit.append(
                ("radius", parse_floats(args.radius_query, 3, "--radius-query"))
            )
        if args.knn:
            lat, lon, k = parse_floats(args.knn, 3, "--knn")
            if k < 1:
                raise SystemExit("query: --knn k must be positive")
            explicit.append(("knn", (lat, lon, int(k))))
        corpus = synthetic_corpus(args.traces, seed=args.seed)
        hdfs = SimulatedHDFS(
            paper_cluster(4),
            chunk_size=1 * MB,
            seed=0,
            memory_budget_mb=args.budget_mb,
        )
        hdfs.put_trace_array("input/traces", corpus)
        with JobRunner(hdfs, executor="serial", memory_budget_mb=args.budget_mb) as runner:
            n_partitions = max(1, runner.cluster.total_reduce_slots() // 2)
            catalog = IndexCatalog(hdfs)
            index, built = catalog.ensure(
                runner, "input/traces", n_partitions=n_partitions
            )
            entry = catalog.entries()[0]
            print(
                f"published index {entry.key}: {entry.n_points:,} points, "
                f"{index.meta['n_pages']} pages "
                f"({index.meta['page_bytes'] / MB:.1f} MB) built in "
                f"{entry.build_sim_seconds:.1f} sim s under a "
                f"{args.budget_mb} MB budget"
            )
            starts_before = sum(
                1 for e in runner.history.events if e.kind == EventKind.JOB_START
            )
            index, rebuilt = catalog.ensure(
                runner, "input/traces", n_partitions=n_partitions
            )
            reuse_jobs = (
                sum(1 for e in runner.history.events if e.kind == EventKind.JOB_START)
                - starts_before
            )
            if rebuilt or reuse_jobs:
                print(f"WARNING: second ensure rebuilt ({reuse_jobs} job(s) ran)")
            else:
                print("second ensure: catalog hit, 0 jobs ran")

        ref_tree = None
        if not args.no_verify:
            # The identical MapReduce build on an unbudgeted twin keeps
            # its merged tree in memory as the byte-identity reference.
            ref_hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=1 * MB, seed=0)
            ref_hdfs.put_trace_array("input/traces", corpus)
            with JobRunner(ref_hdfs, executor="serial") as ref_runner:
                ref_tree = build_rtree_mapreduce(
                    ref_runner,
                    "input/traces",
                    n_partitions=n_partitions,
                    workdir="tmp/rtree-ref",
                ).tree

        workload = explicit or _query_workload(corpus, args.queries, args.seed)

        mismatches = 0
        with JobService(hdfs, tenants={args.tenant: 1.0}) as service:
            client = service.client(args.tenant)
            engine = client.query_engine(key=entry.key)
            for kind, params in workload:
                if kind == "point":
                    got = engine.point(*params)
                    want = ref_tree.query_rect(
                        Rect(params[0], params[1], params[0], params[1])
                    ) if ref_tree is not None else None
                    same = want is None or np.array_equal(got, want)
                elif kind == "range":
                    got = engine.range(*params)
                    want = (
                        ref_tree.query_rect(Rect(*params))
                        if ref_tree is not None
                        else None
                    )
                    same = want is None or np.array_equal(got, want)
                elif kind == "radius":
                    got = engine.radius(*params)
                    want = (
                        ref_tree.query_radius(*params)
                        if ref_tree is not None
                        else None
                    )
                    same = want is None or np.array_equal(got, want)
                else:
                    got = engine.knn(params[0], params[1], int(params[2]))
                    want = (
                        ref_tree.knn(params[0], params[1], int(params[2]))
                        if ref_tree is not None
                        else None
                    )
                    same = want is None or got == want
                mismatches += 0 if same else 1
                last = engine.stats.last
                verdict = "" if ref_tree is None else (
                    "  [identical]" if same else "  [DIVERGED]"
                )
                shown = ", ".join(f"{p:g}" for p in params)
                print(
                    f"  {kind:<7} ({shown}): {last['n_results']} result(s), "
                    f"{last['page_faults']} page fault(s), "
                    f"{1000 * last['latency_s']:.2f} ms sim{verdict}"
                )
            report = engine.report()
            print(
                f"served {report['n_queries']} queries with zero map tasks: "
                f"{report['page_faults']} page fault(s) "
                f"({report['fault_bytes'] / MB:.2f} MB paged in), "
                f"mean sim latency {report['mean_latency_ms']:.2f} ms"
            )
            if ref_tree is not None:
                print(
                    "answers byte-identical to the in-memory R-tree"
                    if mismatches == 0
                    else f"{mismatches} quer(ies) DIVERGED from the in-memory R-tree"
                )
            if args.history:
                service.history.save(args.history)
                print(f"history exported to {args.history}")
        return 1 if mismatches else 0

    if args.command == "stream":
        import json as _json

        if args.report:
            from repro.streaming.manager import RiskTimeline

            try:
                with open(args.report) as fh:
                    doc = _json.load(fh)
                timeline = RiskTimeline.from_doc(doc)
            except FileNotFoundError:
                raise SystemExit(f"stream: no such timeline file: {args.report}")
            except (ValueError, KeyError) as exc:
                raise SystemExit(f"stream: cannot read {args.report}: {exc}")
            print(timeline.render())
            return 0

        if args.selfcheck:
            from repro.streaming.check import run_stream_selfcheck

            ok = run_stream_selfcheck(verbose=True)
            print("stream selfcheck: ok" if ok else "stream selfcheck: FAILED")
            return 0 if ok else 1

        from repro.mapreduce.failures import ChaosSchedule, JobFailedError
        from repro.streaming.check import run_multitenant_stream, run_stream

        if args.tenants < 1:
            raise SystemExit("stream: --tenants must be positive")
        if args.window_s <= 0:
            raise SystemExit("stream: --window-s must be positive")
        dataset, _ = generate_dataset(
            SyntheticConfig(n_users=args.users, days=args.days, seed=args.seed)
        )
        array = dataset.flat()
        chaos = None
        if args.late_prob or args.lost_prob or args.dup_prob:
            try:
                chaos = ChaosSchedule(
                    seed=args.chaos_seed,
                    late_batch_prob=args.late_prob,
                    lost_batch_prob=args.lost_prob,
                    dup_batch_prob=args.dup_prob,
                )
            except ValueError as exc:
                raise SystemExit(f"stream: {exc}")
        manager_kwargs = dict(
            k=args.k,
            max_iter=args.max_iter,
            sampling_window_s=args.sampling_window,
            warm_start=not args.no_warm_start,
            seed=args.seed,
        )
        try:
            if args.tenants == 1:
                result = run_stream(
                    array,
                    args.window_s,
                    mode="service",
                    executor=args.backend,
                    max_workers=None if args.backend == "serial" else 2,
                    memory_budget_mb=args.memory_budget_mb,
                    chaos=chaos,
                    history_path=args.history,
                    **manager_kwargs,
                )
                results = {"stream": result}
            else:
                tenants = {
                    f"tenant{i}": 1.0 for i in range(args.tenants)
                }
                results, report = run_multitenant_stream(
                    array,
                    args.window_s,
                    tenants,
                    executor=args.backend,
                    max_workers=None if args.backend == "serial" else 2,
                    memory_budget_mb=args.memory_budget_mb,
                    chaos=chaos,
                    history_path=args.history,
                    **manager_kwargs,
                )
        except JobFailedError as exc:
            raise SystemExit(f"stream: run failed cleanly under chaos: {exc}")
        except ValueError as exc:
            raise SystemExit(f"stream: {exc}")
        for name in sorted(results):
            print(results[name].timeline.render())
            print(f"run signature: {results[name].signature()}")
        if args.tenants > 1:
            print(report.render())
        if args.out:
            docs = (
                results["stream"].timeline.to_doc()
                if args.tenants == 1
                else {
                    name: results[name].timeline.to_doc()
                    for name in sorted(results)
                }
            )
            with open(args.out, "w") as fh:
                _json.dump(docs, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"timeline written to {args.out}")
        if args.history:
            print(f"history exported to {args.history}")
        return 0

    raise SystemExit(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
