"""Derived metrics and the text report behind ``repro history``.

The summary layer turns a raw event stream into the quantities the
paper's evaluation reasons about: where simulated time went (phase
critical path), which tasks dragged the makespan (straggler ranking),
how well the scheduler placed work (locality mix), what the combiner
saved (record reduction), and how evenly the shuffle spread over the
reducers (per-reducer bytes + skew).

Counter names are read from the serialized history with the literal
strings of the schema (``docs/OBSERVABILITY.md``) — this module never
imports the engine, so a saved history file is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.observability.events import EventKind, Phase
from repro.observability.history import JobHistory, TaskSpan

__all__ = [
    "JobSummary",
    "summarize",
    "summarize_job",
    "tenant_accounting",
    "window_accounting",
    "render_gantt",
    "render_report",
    "render_window_report",
]

#: A task is ranked as a straggler when its duration exceeds the phase
#: median by this factor (Hadoop's speculative-execution heuristic).
STRAGGLER_FACTOR = 1.5


@dataclass
class JobSummary:
    """Everything the report prints about one job."""

    name: str
    start_ts: float
    timing: dict[str, float]
    phases: dict[str, float]
    #: Owning tenant when the job ran through a JobService (None = solo run).
    tenant: str | None = None
    #: Streaming window tags stamped by the StreamingJobManager
    #: (None = not part of a streaming run).
    stream: str | None = None
    window: int | None = None
    #: True when the output was served from the service result cache.
    cache_hit: bool = False
    n_map_tasks: int = 0
    n_reduce_tasks: int = 0
    locality: dict[str, int] = field(default_factory=dict)
    stragglers: list[tuple[TaskSpan, float]] = field(default_factory=list)
    shuffle_bytes_per_reducer: dict[str, int] = field(default_factory=dict)
    #: Metadata-only shuffle accounting (the SHUFFLE_PREAGG event's data;
    #: None when the job shipped raw pairs).
    preagg: dict[str, int] | None = None
    #: Per-reducer locality-aware placement rows keyed by task id
    #: (REDUCE_PLACEMENT events; empty when placement pinning was off).
    reduce_placement: dict[str, dict[str, int]] = field(default_factory=dict)
    combiner: dict[str, int] | None = None
    failed_attempts: int = 0
    speculative_launches: int = 0
    critical_path: list[tuple[str, str, float]] = field(default_factory=list)
    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    # Chaos-engine recovery facts (all zero/empty on fault-free runs).
    faults: dict[str, int] = field(default_factory=dict)
    backoff_s: float = 0.0
    nodes_lost: list[str] = field(default_factory=list)
    nodes_blacklisted: list[str] = field(default_factory=list)
    replicas_healed: int = 0
    healed_bytes: int = 0
    shuffle_refetches: int = 0
    refetched_bytes: int = 0

    @property
    def total_s(self) -> float:
        return float(self.timing.get("total_s", 0.0))

    @property
    def shuffle_bytes(self) -> int:
        return sum(self.shuffle_bytes_per_reducer.values())

    @property
    def shuffle_skew(self) -> float:
        """max/mean per-reducer shuffle bytes (1.0 = perfectly balanced)."""
        loads = list(self.shuffle_bytes_per_reducer.values())
        if not loads or sum(loads) == 0:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean

    @property
    def cross_node_shuffle_bytes(self) -> int | None:
        """Bytes that actually crossed nodes, when provenance was recorded."""
        if self.reduce_placement:
            return sum(r.get("cross_bytes", 0) for r in self.reduce_placement.values())
        if self.preagg is not None and "cross_node_bytes" in self.preagg:
            return int(self.preagg["cross_node_bytes"])
        return None

    @property
    def combiner_reduction(self) -> float | None:
        """input/output record ratio of the combiner, if one ran."""
        if not self.combiner or not self.combiner.get("output_records"):
            return None
        return self.combiner["input_records"] / self.combiner["output_records"]


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def _rank_stragglers(spans: list[TaskSpan]) -> list[tuple[TaskSpan, float]]:
    """(span, duration/median) for tasks beyond STRAGGLER_FACTOR, worst first."""
    ranked: list[tuple[TaskSpan, float]] = []
    for phase in (Phase.MAP, Phase.REDUCE):
        durations = [
            s.duration for s in spans if s.phase == phase and not s.speculative
        ]
        median = _median(durations)
        if median <= 0:
            continue
        for span in spans:
            if span.phase != phase or span.speculative:
                continue
            ratio = span.duration / median
            if ratio >= STRAGGLER_FACTOR:
                ranked.append((span, ratio))
    ranked.sort(key=lambda item: -item[1])
    return ranked


def _critical_path(
    timing: dict[str, float], spans: list[TaskSpan]
) -> list[tuple[str, str, float]]:
    """(phase, dominating element, seconds) chain that bounds the job.

    The simulated job time is sequential over phases, so the critical
    path is the setup block followed by each phase's longest task (the
    task that defines the phase makespan under the slot packing).
    """
    path: list[tuple[str, str, float]] = []
    if timing.get("setup_s"):
        path.append((Phase.SETUP, "job setup + cache broadcast", timing["setup_s"]))
    for phase in (Phase.MAP, Phase.REDUCE):
        candidates = [s for s in spans if s.phase == phase and not s.speculative]
        if not candidates:
            continue
        longest = max(candidates, key=lambda s: s.duration)
        path.append((phase, f"{longest.task} on {longest.node}", longest.duration))
    if timing.get("retry_penalty_s"):
        path.append(("retries", "wasted failed attempts", timing["retry_penalty_s"]))
    return path


def summarize_job(history: JobHistory, job: str) -> JobSummary:
    """Derive one job's metrics summary from its events."""
    start = history.job_start(job)
    finish = history.job_finish(job)
    timing = {k: float(v) for k, v in finish.data.get("timing", {}).items()}
    counters = finish.data.get("counters", {})
    spans = history.task_spans(job)

    locality: dict[str, int] = {}
    for span in spans:
        if span.phase == Phase.MAP and not span.speculative and span.locality:
            locality[span.locality] = locality.get(span.locality, 0) + 1

    shuffle: dict[str, int] = {}
    failed = 0
    speculative = 0
    faults: dict[str, int] = {}
    backoff_s = 0.0
    nodes_lost: list[str] = []
    nodes_blacklisted: list[str] = []
    replicas_healed = 0
    healed_bytes = 0
    shuffle_refetches = 0
    refetched_bytes = 0
    cache_hit = False
    preagg: dict[str, int] | None = None
    reduce_placement: dict[str, dict[str, int]] = {}
    for event in history.events_for(job):
        if event.kind == EventKind.RESULT_CACHE_HIT:
            cache_hit = True
        elif event.kind == EventKind.SHUFFLE_TRANSFER:
            shuffle[str(event.data.get("reducer", event.task))] = int(
                event.data.get("bytes", 0)
            )
        elif event.kind == EventKind.SHUFFLE_PREAGG:
            preagg = {k: int(v) for k, v in event.data.items()}
        elif event.kind == EventKind.REDUCE_PLACEMENT:
            reduce_placement[str(event.task)] = {
                k: int(v) for k, v in event.data.items() if k != "reducer"
            }
        elif event.kind == EventKind.ATTEMPT_FAILED:
            failed += 1
        elif event.kind == EventKind.SPECULATIVE_LAUNCH:
            speculative += 1
        elif event.kind == EventKind.FAULT_INJECTED:
            kind = str(event.data.get("fault", "unknown"))
            faults[kind] = faults.get(kind, 0) + 1
        elif event.kind == EventKind.ATTEMPT_RETRIED:
            backoff_s += float(event.data.get("backoff_s", 0.0))
        elif event.kind == EventKind.NODE_LOST:
            nodes_lost.append(str(event.node))
        elif event.kind == EventKind.NODE_BLACKLISTED:
            nodes_blacklisted.append(str(event.node))
        elif event.kind == EventKind.REPLICA_HEALED:
            replicas_healed += int(event.data.get("replicas", 0))
            healed_bytes += int(event.data.get("nbytes", 0))
        elif event.kind == EventKind.SHUFFLE_REFETCH:
            shuffle_refetches += 1
            refetched_bytes += int(event.data.get("bytes", 0))

    task_group: dict[str, Any] = counters.get("task", {})
    combiner = None
    if task_group.get("combine_input_records"):
        combiner = {
            "input_records": int(task_group["combine_input_records"]),
            "output_records": int(task_group.get("combine_output_records", 0)),
        }

    return JobSummary(
        name=job,
        start_ts=start.ts,
        timing=timing,
        phases=history.phase_durations(job),
        tenant=start.data.get("tenant"),
        stream=start.data.get("stream"),
        window=(
            int(start.data["window"])
            if start.data.get("window") is not None
            else None
        ),
        cache_hit=cache_hit,
        n_map_tasks=int(finish.data.get("n_map_tasks", 0)),
        n_reduce_tasks=int(finish.data.get("n_reduce_tasks", 0)),
        locality=locality,
        stragglers=_rank_stragglers(spans),
        shuffle_bytes_per_reducer=shuffle,
        preagg=preagg,
        reduce_placement=reduce_placement,
        combiner=combiner,
        failed_attempts=failed,
        speculative_launches=speculative,
        critical_path=_critical_path(timing, spans),
        counters={g: dict(names) for g, names in counters.items()},
        faults=faults,
        backoff_s=backoff_s,
        nodes_lost=nodes_lost,
        nodes_blacklisted=nodes_blacklisted,
        replicas_healed=replicas_healed,
        healed_bytes=healed_bytes,
        shuffle_refetches=shuffle_refetches,
        refetched_bytes=refetched_bytes,
    )


def summarize(history: JobHistory) -> list[JobSummary]:
    """Summaries for every finished job, in submission order."""
    out = []
    for job in history.jobs():
        try:
            history.job_finish(job)
        except KeyError:
            continue  # job still running / truncated history
        out.append(summarize_job(history, job))
    return out


def tenant_accounting(
    summaries: list[JobSummary],
) -> dict[str, dict[str, Any]]:
    """Aggregate job summaries per tenant (empty if no job is tenant-tagged).

    For each tenant: job count, result-cache hits, simulated seconds the
    tenant's jobs occupied (cache hits cost only their setup charge), and
    map/reduce task counts.  Jobs without a tenant tag (solo ``run(job)``
    histories) are grouped under ``"-"`` only when tagged jobs are also
    present, so a pure solo history yields no accounting block.
    """
    if not any(s.tenant for s in summaries):
        return {}
    accounts: dict[str, dict[str, Any]] = {}
    for s in summaries:
        row = accounts.setdefault(
            s.tenant or "-",
            {
                "jobs": 0,
                "cache_hits": 0,
                "total_s": 0.0,
                "map_tasks": 0,
                "reduce_tasks": 0,
            },
        )
        row["jobs"] += 1
        row["cache_hits"] += int(s.cache_hit)
        row["total_s"] += s.total_s
        row["map_tasks"] += s.n_map_tasks
        row["reduce_tasks"] += s.n_reduce_tasks
    return accounts


def window_accounting(
    summaries: list[JobSummary],
) -> dict[tuple[str, int, str], dict[str, Any]]:
    """Aggregate job summaries per (stream, window, tenant).

    Streaming runs tag every job's ``job_start`` with its stream name
    and window index (``repro.streaming``); this rolls the per-job
    summaries up into one row per (stream, window, tenant) — job count,
    cache hits, simulated seconds, task counts — the ``repro history
    --window`` view.  Jobs without window tags (the batch world) are
    ignored; an empty dict means the history has no streaming run.
    """
    accounts: dict[tuple[str, int, str], dict[str, Any]] = {}
    for s in summaries:
        if s.window is None:
            continue
        key = (s.stream or "-", s.window, s.tenant or "-")
        row = accounts.setdefault(
            key,
            {
                "jobs": 0,
                "cache_hits": 0,
                "total_s": 0.0,
                "map_tasks": 0,
                "reduce_tasks": 0,
            },
        )
        row["jobs"] += 1
        row["cache_hits"] += int(s.cache_hit)
        row["total_s"] += s.total_s
        row["map_tasks"] += s.n_map_tasks
        row["reduce_tasks"] += s.n_reduce_tasks
    return accounts


def render_window_report(history: JobHistory, tenant: str | None = None) -> str:
    """The ``repro history --window`` view: per-window/per-tenant rollups.

    One row per (stream, window, tenant) plus the stream's control-plane
    counters (points, late/lost/dup) read from the ``window_close``
    events, so the operator sees the windowed workload without paging
    through every job block.
    """
    summaries = summarize(history)
    if tenant is not None:
        summaries = [s for s in summaries if s.tenant == tenant]
    accounts = window_accounting(summaries)
    if not accounts:
        return "history contains no window-tagged jobs (not a streaming run?)"
    closes: dict[tuple[str, int], dict[str, Any]] = {}
    for event in history.events:
        if event.kind == EventKind.WINDOW_CLOSE:
            stream = str(event.job).removesuffix("-ingest")
            closes[(stream, int(event.data.get("window", -1)))] = event.data
    lines = [
        "== per-window accounting " + "=" * 37,
        f"{'stream':<14} {'win':>4} {'tenant':<10} {'jobs':>5} {'hits':>5} "
        f"{'sim-s':>9} {'maps':>6} {'reduces':>8} {'points':>8} "
        f"{'late':>6} {'lost':>6} {'dup':>5}",
    ]
    for key in sorted(accounts):
        stream, window, who = key
        row = accounts[key]
        close = closes.get((stream, window), {})
        lines.append(
            f"{stream:<14} {window:>4} {who:<10} {row['jobs']:>5} "
            f"{row['cache_hits']:>5} {row['total_s']:>9.1f} "
            f"{row['map_tasks']:>6} {row['reduce_tasks']:>8} "
            f"{close.get('n_points', 0):>8} {close.get('late_points', 0):>6} "
            f"{close.get('lost_points', 0):>6} {close.get('dup_points', 0):>5}"
        )
    n_windows = len({(s, w) for s, w, _ in accounts})
    total = sum(r["total_s"] for r in accounts.values())
    jobs = sum(r["jobs"] for r in accounts.values())
    lines.append(
        f"{n_windows} window(s), {jobs} windowed job(s), "
        f"{total:.1f} simulated s total"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt_bytes(n: int) -> str:
    if n >= 1024 * 1024:
        return f"{n / (1024 * 1024):.2f} MB"
    if n >= 1024:
        return f"{n / 1024:.1f} KB"
    return f"{n} B"


def render_gantt(history: JobHistory, job: str, width: int = 48) -> str:
    """Text Gantt chart of one job's task timeline.

    One row per task attempt; bars are positioned on the job's simulated
    time axis (``#`` primary attempts, ``%`` speculative duplicates).
    A retried task's bar covers all its attempts, so it may extend past
    the phase makespan — the cost model charges that excess to the
    job-level retry penalty rather than the phase clock.
    """
    spans = history.task_spans(job)
    if not spans:
        return "(no tasks)"
    t0 = history.job_start(job).ts
    t1 = max(max(s.end for s in spans), history.job_finish(job).ts)
    extent = max(t1 - t0, 1e-9)
    name_w = max(len(s.task) for s in spans)
    node_w = max(len(s.node) for s in spans)
    lines = []
    for span in spans:
        lo = int(round((span.start - t0) / extent * width))
        hi = max(int(round((span.end - t0) / extent * width)), lo + 1)
        hi = min(hi, width)
        bar = " " * lo + ("%" if span.speculative else "#") * (hi - lo)
        bar = bar.ljust(width)
        suffix = f" {span.start - t0:>7.1f}s-{span.end - t0:.1f}s"
        flags = ""
        if span.attempts > 1:
            flags += f" x{span.attempts} attempts"
        if span.speculative:
            flags += " (speculative)"
        lines.append(
            f"  {span.task:<{name_w}} {span.node:<{node_w}} |{bar}|{suffix}{flags}"
        )
    return "\n".join(lines)


def _render_job(history: JobHistory, summary: JobSummary, gantt: bool, width: int) -> str:
    t = summary.timing
    header = summary.name
    if summary.tenant:
        header += f" [tenant {summary.tenant}]"
    if summary.cache_hit:
        header += " (result-cache hit)"
    lines = [
        f"== {header} " + "=" * max(4, 58 - len(header)),
        (
            f"  total {summary.total_s:.1f} sim s"
            f"  (setup {t.get('setup_s', 0.0):.1f}"
            f" + map {t.get('map_s', 0.0):.1f}"
            f" + reduce {t.get('reduce_s', 0.0):.1f}"
            f"; retries +{t.get('retry_penalty_s', 0.0):.1f})"
        ),
    ]
    loc = summary.locality
    loc_txt = ", ".join(
        f"{loc.get(kind, 0)} {label}"
        for kind, label in (
            ("node_local", "node-local"),
            ("rack_local", "rack-local"),
            ("remote", "remote"),
        )
    )
    reduces = (
        f"{summary.n_reduce_tasks} reduces" if summary.n_reduce_tasks else "map-only"
    )
    lines.append(f"  tasks: {summary.n_map_tasks} maps ({loc_txt}), {reduces}")
    if summary.shuffle_bytes_per_reducer:
        lines.append(
            f"  shuffle: {_fmt_bytes(summary.shuffle_bytes)} across "
            f"{len(summary.shuffle_bytes_per_reducer)} reducers "
            f"(skew max/mean {summary.shuffle_skew:.2f})"
        )
    if summary.preagg is not None:
        p = summary.preagg
        cross = summary.cross_node_shuffle_bytes
        cross_txt = (
            f"; {_fmt_bytes(cross)} crossed nodes" if cross is not None else ""
        )
        lines.append(
            f"  pre-agg shuffle: {p.get('raw_records', 0):,} raw records as "
            f"{p.get('envelopes', 0):,} envelopes "
            f"({_fmt_bytes(p.get('envelope_bytes', 0))}{cross_txt})"
        )
    if summary.reduce_placement:
        pinned_local = sum(
            r.get("local_bytes", 0) for r in summary.reduce_placement.values()
        )
        pinned_total = sum(
            r.get("bytes", 0) for r in summary.reduce_placement.values()
        )
        lines.append(
            f"  reduce placement: {len(summary.reduce_placement)} reducers "
            f"pinned to data, {_fmt_bytes(pinned_local)} of "
            f"{_fmt_bytes(pinned_total)} served node-locally"
        )
    if summary.combiner_reduction is not None:
        c = summary.combiner
        lines.append(
            f"  combiner: {c['input_records']:,} -> {c['output_records']:,} "
            f"records ({summary.combiner_reduction:.0f}x reduction)"
        )
    if summary.failed_attempts or summary.speculative_launches:
        lines.append(
            f"  recovery: {summary.failed_attempts} failed attempts retried, "
            f"{summary.speculative_launches} speculative launches"
        )
    if summary.faults:
        kinds = ", ".join(f"{k} x{n}" for k, n in sorted(summary.faults.items()))
        backoff = (
            f"; backoff +{summary.backoff_s:.1f}s" if summary.backoff_s else ""
        )
        lines.append(f"  faults injected: {kinds}{backoff}")
    if summary.nodes_lost:
        lines.append(
            f"  node loss: {', '.join(summary.nodes_lost)} "
            f"({summary.replicas_healed} replicas healed, "
            f"{_fmt_bytes(summary.healed_bytes)} re-replicated)"
        )
    if summary.nodes_blacklisted:
        lines.append(f"  blacklisted: {', '.join(summary.nodes_blacklisted)}")
    if summary.shuffle_refetches:
        lines.append(
            f"  shuffle refetch: {summary.shuffle_refetches} fetch(es), "
            f"{_fmt_bytes(summary.refetched_bytes)} re-pulled"
        )
    if summary.critical_path:
        chain = " -> ".join(
            f"{what} ({phase} {seconds:.1f}s)"
            for phase, what, seconds in summary.critical_path
        )
        lines.append(f"  critical path: {chain}")
    if summary.stragglers:
        lines.append("  stragglers (duration vs phase median):")
        for span, ratio in summary.stragglers[:8]:
            loc_note = f" [{span.locality}]" if span.locality else ""
            lines.append(
                f"    {span.task}  {ratio:.1f}x  {span.duration:.1f}s  "
                f"{span.node}{loc_note}"
            )
    if gantt:
        lines.append("  timeline:")
        lines.append(render_gantt(history, summary.name, width=width))
    return "\n".join(lines)


def render_report(
    history: JobHistory,
    jobs: list[str] | None = None,
    gantt: bool = True,
    width: int = 48,
    tenant: str | None = None,
) -> str:
    """The full ``repro history`` report: one block per job + totals.

    ``tenant`` restricts the report to one tenant's jobs in a service
    history (jobs whose ``job_start`` carries that tenant tag).
    """
    summaries = summarize(history)
    if jobs is not None:
        wanted = set(jobs)
        summaries = [s for s in summaries if s.name in wanted]
    if tenant is not None:
        summaries = [s for s in summaries if s.tenant == tenant]
    if not summaries:
        return "history contains no finished jobs"
    blocks = [_render_job(history, s, gantt, width) for s in summaries]
    accounts = tenant_accounting(summaries)
    if accounts:
        acct_lines = ["== per-tenant accounting " + "=" * 37]
        name_w = max(len(t) for t in accounts)
        for name in sorted(accounts):
            row = accounts[name]
            acct_lines.append(
                f"  {name:<{name_w}}  {row['jobs']} job(s)"
                f"  ({row['cache_hits']} cache hit(s))"
                f"  {row['total_s']:.1f} sim s"
                f"  {row['map_tasks']} maps / {row['reduce_tasks']} reduces"
            )
        blocks.append("\n".join(acct_lines))
    total = sum(s.total_s for s in summaries)
    shuffle_total = sum(s.shuffle_bytes for s in summaries)
    blocks.append(
        f"{len(summaries)} job(s), {total:.1f} simulated s total, "
        f"shuffle {_fmt_bytes(shuffle_total)}, {len(history)} events"
    )
    return "\n\n".join(blocks)
