"""The typed event vocabulary of the job-history layer.

An :class:`Event` is one observation about the MapReduce lifecycle, with a
timestamp on the **simulated clock** (the same cost-model seconds the
paper's Table III reports).  Events are intentionally plain data — a kind,
a job name, optional task/node, and a JSON-safe ``data`` payload — so a
history file written today stays readable regardless of how the engine's
internal classes evolve.  The full schema is documented in
``docs/OBSERVABILITY.md``; :data:`SCHEMA_VERSION` gates compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Event", "EventKind", "Phase", "SCHEMA_VERSION"]

#: Version stamp written into every history file.
SCHEMA_VERSION = 1


class EventKind:
    """Well-known event kinds (the closed vocabulary of the schema)."""

    #: A job was submitted; data: input_paths, output_path, n_chunks,
    #: map_only, num_reducers, combiner.
    JOB_START = "job_start"
    #: A job completed; data: timing {setup_s, map_s, reduce_s,
    #: retry_penalty_s, total_s}, counters (nested group->name->int),
    #: n_map_tasks, n_reduce_tasks.
    JOB_FINISH = "job_finish"
    #: A lifecycle phase (see :class:`Phase`) began; data: phase.
    PHASE_START = "phase_start"
    #: A phase ended; data: phase, duration_s.
    PHASE_FINISH = "phase_finish"
    #: A task attempt chain began on its planned node; data: phase,
    #: locality (map tasks), input_bytes, input_records, speculative.
    TASK_START = "task_start"
    #: A task's successful attempt finished; data: phase, duration_s,
    #: attempts, wasted_s, locality, speculative.
    TASK_FINISH = "task_finish"
    #: One attempt of a task crashed and will be retried; data: attempt,
    #: reason.  Always emitted before the owning task's TASK_FINISH.
    ATTEMPT_FAILED = "attempt_failed"
    #: The scheduler duplicated a straggler onto another node; data:
    #: original_node, duration_s.
    SPECULATIVE_LAUNCH = "speculative_launch"
    #: Intermediate data crossed the network to one reducer; data:
    #: reducer, bytes, records, groups.
    SHUFFLE_TRANSFER = "shuffle_transfer"
    #: The distributed cache was broadcast to the tasktrackers; data:
    #: entries, nbytes, broadcast_s.
    CACHE_LOAD = "cache_load"
    #: A multi-job pipeline began; data: n_stages.
    PIPELINE_START = "pipeline_start"
    #: A pipeline finished; data: stages (job names), sim_seconds.
    PIPELINE_FINISH = "pipeline_finish"
    #: A free-form annotation from an algorithm driver (e.g. one k-means
    #: iteration converging); data: driver-specific.
    DRIVER_ANNOTATION = "driver_annotation"
    #: The chaos engine crashed a task attempt; data: attempt, fault
    #: (one of :class:`repro.mapreduce.failures.FaultKind`), reason.
    #: Always emitted between the owning task's TASK_START and
    #: TASK_FINISH, immediately before the matching ATTEMPT_FAILED.
    FAULT_INJECTED = "fault_injected"
    #: The jobtracker re-dispatched a failed task attempt; data: attempt
    #: (the retry's number), backoff_s (exponential-backoff wait charged
    #: to the retry penalty), reason.  Emitted between TASK_START and
    #: TASK_FINISH, after the ATTEMPT_FAILED it answers.
    ATTEMPT_RETRIED = "attempt_retried"
    #: A node crossed the per-job failure threshold and stopped receiving
    #: task dispatches; data: failures, threshold.
    NODE_BLACKLISTED = "node_blacklisted"
    #: A tasktracker+datanode died mid-phase; data: lost_tasks (map tasks
    #: whose outputs vanished and were re-dispatched), detect_s.
    NODE_LOST = "node_lost"
    #: The namenode re-replicated under-replicated chunks after node
    #: loss; data: replicas, nbytes, rereplicate_s.
    REPLICA_HEALED = "replica_healed"
    #: A reducer re-fetched map output (fetch timeout, or the source node
    #: died and the re-executed map's output was read from a surviving
    #: replica); data: bytes, refetch_s, reason.
    SHUFFLE_REFETCH = "shuffle_refetch"
    #: The memory budget forced data to local disk: a map task spilled
    #: its output worker-side (``source="map"``; data: records, bytes,
    #: write_s) or the shuffle cut one sorted run (``source="shuffle"``;
    #: data: run, records, bytes, write_s).  Only budgeted runs emit
    #: these; they never change job outputs or counters.
    SPILL_START = "spill_start"
    #: The external shuffle k-way merged one reduce partition's spilled
    #: runs; data: runs, records, groups, bytes, read_s.
    SPILL_MERGE = "spill_merge"
    #: A tenant handed a job to the :class:`~repro.mapreduce.service.JobService`
    #: queue; data: tenant, queue_depth (jobs queued service-wide after
    #: this submit, this one included).  Emitted at submit time, before
    #: the fair-share dispatcher picks the job up.
    JOB_SUBMIT = "job_submit"
    #: The service's fair-share dispatcher pulled a queued job for
    #: execution; data: tenant, dispatch_index (0-based global dispatch
    #: order), queued (jobs still waiting service-wide).  Falls between
    #: the job's JOB_SUBMIT and JOB_START.
    JOB_DISPATCH = "job_dispatch"
    #: The result cache satisfied a submission without running any tasks;
    #: data: tenant, key (cache-key digest), source_path, saved_map_tasks.
    #: Replaces the whole JOB_START..JOB_FINISH task timeline except the
    #: job_start/job_finish pair itself.
    RESULT_CACHE_HIT = "result_cache_hit"
    #: A completed job's output was copied into the result cache for
    #: future identical submissions; data: tenant, key, nbytes.
    RESULT_CACHE_STORE = "result_cache_store"
    #: An R-tree built by MapReduce was persisted as node pages in HDFS
    #: and registered in the :class:`~repro.index.persistent.IndexCatalog`;
    #: data: key, path, input_path, dataset_version, n_points, n_pages,
    #: page_bytes, build_sim_seconds.
    INDEX_PUBLISH = "index_publish"
    #: The catalog answered an index request from an already-persisted
    #: build — zero jobs ran; data: key, path, input_path,
    #: dataset_version, n_points.
    INDEX_REUSE = "index_reuse"
    #: The serving path answered one point/range/radius/kNN query from
    #: persisted pages (zero map tasks); data: query, n_results,
    #: page_faults, fault_bytes, latency_s, plus query parameters.
    QUERY_SERVED = "query_served"
    #: The micro-batcher started accepting feed batches for one simtime
    #: window; data: window (index), t_start, t_end (event-time bounds).
    WINDOW_OPEN = "window_open"
    #: The micro-batcher advanced the stream's watermark: every batch
    #: with event time below it has been delivered, dropped (lost) or
    #: reassigned to the next window (late); data: window, watermark
    #: (event-time seconds).
    WATERMARK = "watermark"
    #: A window's dataset was sealed into HDFS via ``put_trace_stream``;
    #: data: window, path, n_points, late_points, lost_points,
    #: dup_points, n_feeds.
    WINDOW_CLOSE = "window_close"
    #: The per-window analysis jobs finished and the rolling risk score
    #: was appended to the :class:`~repro.streaming.RiskTimeline`; data:
    #: window, n_points, kmeans_iterations, warm_start, n_pois, risk,
    #: min_anonymity, latency_s (simulated close-to-result seconds).
    WINDOW_RESULT = "window_result"
    #: The metadata-only shuffle shipped pre-aggregated envelopes instead
    #: of raw pairs; data: envelopes (shipped after per-node coalescing),
    #: envelope_bytes, pre_coalesce_envelopes (map-side envelope count
    #: before transport coalescing), raw_records (mapper records the
    #: envelopes stand in for), and — when locality-aware placement
    #: recorded provenance — cross_node_bytes (the share that actually
    #: crossed nodes).  Emitted once per job, only when the
    #: metadata-only path ran.
    SHUFFLE_PREAGG = "shuffle_preagg"
    #: Locality-aware reduce placement pinned one reducer to the node
    #: holding the plurality of its partition's bytes; data: reducer,
    #: bytes (total partition bytes), local_bytes (already on the chosen
    #: node), cross_bytes (fetched over the network).  Emitted per reduce
    #: task, only when the runner's ``reduce_locality`` knob is on and
    #: the shuffle recorded per-node byte provenance.
    REDUCE_PLACEMENT = "reduce_placement"
    #: A linkage attack finished; data: driver, n_train_fingerprints,
    #: n_target_fingerprints, linked, success_rate, pairs_scored,
    #: pairs_exact (present only when the persistent-index audit ran),
    #: cross_product, signature.  Emitted once per
    #: ``run_linkage_attack`` call, job-scoped like driver_annotation.
    ATTACK_RESULT = "attack_result"
    #: One (sanitizer × attack) cell of a privacy-vs-utility sweep
    #: finished; data: mechanism, tenant, success_rate, linked,
    #: n_targets, window_risk, distortion_m, volume_ratio, sim_seconds.
    #: Emitted by ``repro.attacks.sweep`` into the shared service
    #: history.
    SWEEP_CELL = "sweep_cell"

    @classmethod
    def all(cls) -> tuple[str, ...]:
        """Every known kind, in declaration order."""
        return tuple(
            v
            for k, v in vars(cls).items()
            if not k.startswith("_") and isinstance(v, str)
        )


class Phase:
    """Lifecycle phase names used by PHASE_* and TASK_* events."""

    SETUP = "setup"
    MAP = "map"
    REDUCE = "reduce"

    ORDER = (SETUP, MAP, REDUCE)


def _json_safe(value: Any) -> Any:
    """Coerce a payload value to JSON-serializable plain data."""
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # numpy scalars and anything else with .item(); fall back to str.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass(frozen=True)
class Event:
    """One observation in a job history.

    ``seq`` is the collector-assigned emission index — the authoritative
    order for the guarantees tested in ``tests/observability`` (ties on
    ``ts`` are broken by ``seq``).  ``ts`` is simulated seconds since the
    history's epoch (the runner's deployment), *not* wall clock.
    """

    seq: int
    ts: float
    kind: str
    job: str
    task: str | None = None
    node: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EventKind.all():
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.ts < 0:
            raise ValueError(f"event timestamp must be >= 0, got {self.ts}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe plain-dict form (the on-disk record)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "ts": round(float(self.ts), 6),
            "kind": self.kind,
            "job": self.job,
        }
        if self.task is not None:
            out["task"] = self.task
        if self.node is not None:
            out["node"] = self.node
        if self.data:
            out["data"] = _json_safe(self.data)
        return out

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Event":
        try:
            return cls(
                seq=int(record["seq"]),
                ts=float(record["ts"]),
                kind=str(record["kind"]),
                job=str(record["job"]),
                task=record.get("task"),
                node=record.get("node"),
                data=dict(record.get("data", {})),
            )
        except KeyError as exc:
            raise ValueError(f"event record missing field {exc}") from None
