"""Structured job-history tracing for the MapReduce engine.

The paper's whole evaluation (Tables I, III, IV; Figures 2-6) consists of
*observing* job behaviour — iteration times, chunk-size effects, locality,
combiner savings.  This package is the first-class observability layer
that makes those observations without ad-hoc timing code:

* :mod:`repro.observability.events` — the typed event vocabulary
  (job/phase/task start+finish, attempt failures, speculative launches,
  shuffle transfers, cache loads, pipeline stages, driver annotations).
* :mod:`repro.observability.history` — :class:`JobHistory`, the collector
  every :class:`~repro.mapreduce.runner.JobRunner` owns.  It receives
  events aligned to the :mod:`~repro.mapreduce.simtime` cost-model clock,
  materializes per-task timelines, validates ordering guarantees and
  round-trips through JSON/JSONL history files.
* :mod:`repro.observability.report` — derived metrics (phase critical
  path, straggler ranking, locality/combiner effectiveness, per-reducer
  shuffle bytes) and the text Gantt/summary renderer behind the
  ``repro history`` CLI subcommand.

This package deliberately imports nothing from :mod:`repro.mapreduce`
(events carry plain data), so the engine can depend on it without cycles.
The on-disk schema is documented in ``docs/OBSERVABILITY.md``.
"""

from repro.observability.events import Event, EventKind, Phase, SCHEMA_VERSION
from repro.observability.history import JobHistory, TaskSpan, load_history
from repro.observability.report import (
    JobSummary,
    render_gantt,
    render_report,
    summarize,
    summarize_job,
)

__all__ = [
    "Event",
    "EventKind",
    "Phase",
    "SCHEMA_VERSION",
    "JobHistory",
    "TaskSpan",
    "load_history",
    "JobSummary",
    "summarize",
    "summarize_job",
    "render_gantt",
    "render_report",
]
