"""The :class:`JobHistory` collector and its on-disk formats.

A :class:`~repro.mapreduce.runner.JobRunner` owns one ``JobHistory`` for
its whole deployment lifetime: successive jobs (e.g. the per-iteration
k-means jobs) stack on one cumulative simulated clock, so a single
history file holds the full per-iteration trace of a driver run.

Two interchangeable file formats are supported, selected by extension in
:meth:`JobHistory.save`:

* ``*.json`` — one object ``{"version", "events": [...]}``;
* ``*.jsonl`` — a header line then one event object per line, for
  streaming consumers / very long histories.

Ordering guarantees (enforced by the runner, checked by
:meth:`JobHistory.validate`, relied on by the report layer):

* every ``task_finish`` is preceded (in ``seq`` order) by the matching
  ``task_start`` of the same job+task;
* every ``attempt_failed`` (and its chaos-engine companions
  ``fault_injected`` and ``attempt_retried``) of a task precedes that
  task's ``task_finish`` — failed attempts come before the successful
  attempt;
* every ``phase_finish``/``job_finish`` follows its start event, and a
  finish timestamp is never earlier than its start timestamp.
"""

from __future__ import annotations

import io
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.observability.events import SCHEMA_VERSION, Event, EventKind

__all__ = ["JobHistory", "TaskSpan", "load_history"]


@dataclass(frozen=True)
class TaskSpan:
    """One task's materialized timeline, derived from its event pair."""

    job: str
    task: str
    node: str
    phase: str
    start: float
    end: float
    attempts: int = 1
    locality: str | None = None
    speculative: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class JobHistory:
    """Collects typed events on a cumulative simulated clock.

    The collector is append-only; ``seq`` numbers are assigned at emit
    time and define the authoritative event order.  ``clock`` is advanced
    by the runner after each job so that the next job's events start where
    the previous job ended.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.clock: float = 0.0
        self._seq = 0
        # Guards seq assignment + append: a JobService's submit threads
        # emit job_submit events concurrently with the dispatcher.
        self._emit_lock = threading.Lock()

    # -- collection ---------------------------------------------------------
    def emit(
        self,
        kind: str,
        job: str,
        ts: float,
        task: str | None = None,
        node: str | None = None,
        **data: Any,
    ) -> Event:
        """Append one event; returns it (mainly for tests).  Thread-safe."""
        with self._emit_lock:
            event = Event(
                seq=self._seq, ts=float(ts), kind=kind, job=job, task=task,
                node=node, data=data,
            )
            self._seq += 1
            self.events.append(event)
            return event

    def advance(self, until: float) -> None:
        """Move the cumulative clock forward (never backwards)."""
        with self._emit_lock:
            self.clock = max(self.clock, float(until))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # -- queries ------------------------------------------------------------
    def jobs(self) -> list[str]:
        """Job names in submission order."""
        return [e.job for e in self.events if e.kind == EventKind.JOB_START]

    def events_for(self, job: str) -> list[Event]:
        return [e for e in self.events if e.job == job]

    def job_start(self, job: str) -> Event:
        return self._single(job, EventKind.JOB_START)

    def job_finish(self, job: str) -> Event:
        return self._single(job, EventKind.JOB_FINISH)

    def _single(self, job: str, kind: str) -> Event:
        for event in self.events:
            if event.job == job and event.kind == kind:
                return event
        raise KeyError(f"no {kind} event for job {job!r}")

    def phase_durations(self, job: str) -> dict[str, float]:
        """Phase name -> duration, from the job's ``phase_finish`` events."""
        return {
            e.data["phase"]: float(e.data["duration_s"])
            for e in self.events_for(job)
            if e.kind == EventKind.PHASE_FINISH
        }

    def task_spans(self, job: str) -> list[TaskSpan]:
        """Materialized per-task timelines, ordered by (start, task)."""
        starts: dict[tuple[str, bool], Event] = {}
        spans: list[TaskSpan] = []
        for event in self.events_for(job):
            if event.kind == EventKind.TASK_START:
                key = (event.task or "", bool(event.data.get("speculative")))
                starts[key] = event
            elif event.kind == EventKind.TASK_FINISH:
                key = (event.task or "", bool(event.data.get("speculative")))
                start = starts.get(key)
                if start is None:
                    raise ValueError(
                        f"task_finish without task_start: {event.job}/{event.task}"
                    )
                spans.append(
                    TaskSpan(
                        job=event.job,
                        task=event.task or "",
                        node=event.node or "",
                        phase=str(event.data.get("phase", "")),
                        start=start.ts,
                        end=event.ts,
                        attempts=int(event.data.get("attempts", 1)),
                        locality=event.data.get("locality"),
                        speculative=bool(event.data.get("speculative")),
                    )
                )
        spans.sort(key=lambda s: (s.start, s.task, s.speculative))
        return spans

    # -- invariants ---------------------------------------------------------
    def validate(self) -> list[str]:
        """Check the ordering guarantees; returns violations ([] = ok)."""
        problems: list[str] = []
        last_seq = -1
        for event in self.events:
            if event.seq <= last_seq:
                problems.append(f"seq not strictly increasing at {event.seq}")
            last_seq = event.seq

        for job in self.jobs():
            events = self.events_for(job)
            problems.extend(self._validate_job(job, events))
        return problems

    @staticmethod
    def _validate_job(job: str, events: list[Event]) -> list[str]:
        problems: list[str] = []
        job_started: Event | None = None
        job_finished: Event | None = None
        phase_open: dict[str, Event] = {}
        # task key -> (start event, finish seen, failures pending)
        task_started: dict[tuple[str, bool], Event] = {}
        task_finished: set[tuple[str, bool]] = set()

        for event in events:
            kind = event.kind
            if kind == EventKind.JOB_START:
                job_started = event
            elif kind == EventKind.JOB_FINISH:
                job_finished = event
                if job_started is None:
                    problems.append(f"{job}: job_finish before job_start")
                elif event.ts < job_started.ts:
                    problems.append(f"{job}: job_finish ts precedes job_start")
            elif kind == EventKind.PHASE_START:
                phase_open[str(event.data.get("phase"))] = event
            elif kind == EventKind.PHASE_FINISH:
                phase = str(event.data.get("phase"))
                start = phase_open.pop(phase, None)
                if start is None:
                    problems.append(f"{job}: phase_finish({phase}) without start")
                elif event.ts < start.ts:
                    problems.append(f"{job}: phase {phase} finish ts precedes start")
            elif kind == EventKind.TASK_START:
                key = (event.task or "", bool(event.data.get("speculative")))
                task_started[key] = event
            elif kind in (
                EventKind.ATTEMPT_FAILED,
                EventKind.FAULT_INJECTED,
                EventKind.ATTEMPT_RETRIED,
            ):
                key = (event.task or "", False)
                if key not in task_started:
                    problems.append(
                        f"{job}/{event.task}: {kind} before task_start"
                    )
                if key in task_finished:
                    problems.append(
                        f"{job}/{event.task}: {kind} after task_finish"
                    )
            elif kind == EventKind.TASK_FINISH:
                key = (event.task or "", bool(event.data.get("speculative")))
                start = task_started.get(key)
                if start is None:
                    problems.append(f"{job}/{event.task}: task_finish without start")
                elif event.ts < start.ts:
                    problems.append(f"{job}/{event.task}: finish ts precedes start")
                task_finished.add(key)

        for (task, speculative), start in task_started.items():
            if (task, speculative) not in task_finished:
                problems.append(f"{job}/{task}: task_start without task_finish")
        for phase in phase_open:
            problems.append(f"{job}: phase {phase} never finished")
        if job_started is not None and job_finished is None:
            problems.append(f"{job}: job never finished")
        return problems

    # -- serialization ------------------------------------------------------
    def to_json_obj(self) -> dict[str, Any]:
        return {
            "version": SCHEMA_VERSION,
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_json_obj(), indent=indent)

    def to_jsonl(self) -> str:
        buf = io.StringIO()
        buf.write(json.dumps({"version": SCHEMA_VERSION}) + "\n")
        for event in self.events:
            buf.write(json.dumps(event.to_dict()) + "\n")
        return buf.getvalue()

    def save(self, path: str | Path) -> Path:
        """Write the history file; ``.jsonl`` selects the line format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".jsonl":
            path.write_text(self.to_jsonl())
        else:
            path.write_text(self.to_json(indent=1))
        return path

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "JobHistory":
        history = cls()
        for event in events:
            history.events.append(event)
            history._seq = max(history._seq, event.seq + 1)
            history.clock = max(history.clock, event.ts)
        return history

    @classmethod
    def from_json_obj(cls, obj: dict[str, Any]) -> "JobHistory":
        version = obj.get("version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported history version {version!r} "
                f"(this reader understands {SCHEMA_VERSION})"
            )
        return cls.from_events(Event.from_dict(r) for r in obj.get("events", []))

    @classmethod
    def load(cls, path: str | Path) -> "JobHistory":
        """Read a ``.json`` or ``.jsonl`` history file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix == ".jsonl":
            lines = [line for line in text.splitlines() if line.strip()]
            if not lines:
                raise ValueError(f"empty history file: {path}")
            header = json.loads(lines[0])
            return cls.from_json_obj(
                {
                    "version": header.get("version"),
                    "events": [json.loads(line) for line in lines[1:]],
                }
            )
        return cls.from_json_obj(json.loads(text))


def load_history(path: str | Path) -> JobHistory:
    """Convenience alias for :meth:`JobHistory.load`."""
    return JobHistory.load(path)
