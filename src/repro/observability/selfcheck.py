"""``python -m repro history --selfcheck``: end-to-end tracing smoke test.

Runs a miniature deployment through the three paper workloads' tracing
paths — a map-only sampling job and a short MapReduce k-means drive with
an injected task failure — then exercises the full observability loop:
export to JSON *and* JSONL, reload both, validate the ordering
guarantees, check the phase-sum-equals-JobTiming invariant, and render
the text report.  The CI smoke step (`tests/test_docs_and_smoke.py`)
runs this, so the tracing layer cannot silently rot.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

__all__ = ["run_selfcheck"]


def run_selfcheck(verbose: bool = True) -> int:
    """Run the smoke test; returns 0 on success, 1 on any violation."""
    # Imports are local so that `import repro.observability.selfcheck`
    # stays cheap and cycle-free (this module pulls in the whole engine).
    from repro.algorithms.kmeans import run_kmeans_mapreduce
    from repro.algorithms.sampling import run_sampling_job
    from repro.geo.synthetic import SyntheticConfig, generate_dataset
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.failures import FailureInjector
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.runner import JobRunner
    from repro.observability.history import load_history
    from repro.observability.report import render_report, summarize

    problems: list[str] = []

    def say(message: str) -> None:
        if verbose:
            print(message)

    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=42))
    array = dataset.flat().sort_by_time()

    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", array, record_bytes=64)
    injector = FailureInjector(scripted={("map-0001", 1)})
    runner = JobRunner(hdfs, failure_injector=injector)

    timings = {}
    result = run_sampling_job(runner, "input/traces", "out/sampled", window_s=60.0)
    timings[result.job_name] = result.timing
    km = run_kmeans_mapreduce(
        runner, "input/traces", k=3, max_iter=2, seed=7, use_combiner=True,
        workdir="tmp/selfcheck-kmeans",
    )

    history = runner.history
    say(
        f"ran {len(history.jobs())} jobs "
        f"({km.n_iterations} k-means iterations), {len(history)} events"
    )

    violations = history.validate()
    if violations:
        problems.append(f"ordering violations: {violations}")

    # Per-phase durations must reproduce the cost model's JobTiming.
    for job_name, timing in timings.items():
        phases = history.phase_durations(job_name)
        total = sum(phases.values()) + timing.retry_penalty_s
        if abs(total - timing.total_s) > 1e-6:
            problems.append(
                f"{job_name}: phases {total:.3f}s != JobTiming {timing.total_s:.3f}s"
            )

    # The injected failure must appear before the task's successful finish.
    failed = [e for e in history if e.kind == "attempt_failed"]
    if not failed:
        problems.append("injected task failure produced no attempt_failed event")

    # Round-trip through both on-disk formats.
    with tempfile.TemporaryDirectory(prefix="repro-history-") as tmp:
        for suffix in (".json", ".jsonl"):
            path = Path(tmp) / f"history{suffix}"
            history.save(path)
            reloaded = load_history(path)
            if [e.to_dict() for e in reloaded] != [e.to_dict() for e in history]:
                problems.append(f"{suffix} round-trip altered the event stream")
            elif reloaded.validate():
                problems.append(f"{suffix} reload fails validation")

    summaries = summarize(history)
    if len(summaries) != len(history.jobs()):
        problems.append(
            f"summarized {len(summaries)} of {len(history.jobs())} jobs"
        )
    report = render_report(history)
    for needle in ("critical path", "sim s", "node-local"):
        if needle not in report:
            problems.append(f"report is missing {needle!r}")

    if problems:
        for problem in problems:
            print(f"selfcheck FAILED: {problem}")
        return 1
    say(
        "history selfcheck: ok "
        f"({len(history)} events, {len(history.jobs())} jobs, "
        f"{len(failed)} retried attempt(s) traced)"
    )
    return 0
