"""GEPETO — the GEoPrivacy-Enhancing TOolkit facade.

The public API a data curator uses: load or synthesize a geolocated
dataset, sanitize it, run inference attacks, measure the privacy/utility
trade-off, visualize — locally or on a simulated Hadoop deployment.

Typical session::

    from repro import Gepeto
    from repro.sanitization import GaussianMask

    gep, truth = Gepeto.synthetic(n_users=10, days=3, seed=7)
    sanitized = gep.sanitize(GaussianMask(sigma_m=120))
    pois = sanitized.poi_attack_all()
    print(sanitized.utility_versus(gep))

    cluster = gep.deploy(n_workers=5, chunk_size_mb=64)
    result = cluster.kmeans(k=11, distance="haversine")
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.algorithms.djcluster import (
    DJClusterParams,
    DJClusterResult,
    djcluster_sequential,
    run_djcluster_mapreduce,
)
from repro.algorithms.kmeans import KMeansResult, kmeans_sequential, run_kmeans_mapreduce
from repro.algorithms.sampling import SamplingTechnique, run_sampling_job, sample_dataset
from repro.attacks.deanonymization import DeanonymizationResult, deanonymization_attack
from repro.attacks.poi import PointOfInterestEstimate, poi_attack
from repro.geo.geolife import read_geolife_dataset, write_geolife_dataset
from repro.geo.synthetic import SyntheticConfig, SyntheticUser, generate_dataset
from repro.geo.trace import GeolocatedDataset, TraceArray
from repro.index.rtree_mr import RTreeBuildResult, build_rtree_mapreduce
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import MB, SimulatedHDFS
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.simtime import CostModel
from repro.metrics.utility import UtilityReport, utility_report
from repro.sanitization.base import Sanitizer
from repro.viz import ascii_density_map

__all__ = ["Gepeto", "GepetoCluster"]


class Gepeto:
    """A geolocated dataset plus GEPETO's operations over it."""

    def __init__(self, dataset: GeolocatedDataset):
        self.dataset = dataset

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_geolife(cls, root: str | Path, user_ids=None) -> "Gepeto":
        """Load a GeoLife-layout directory tree."""
        return cls(read_geolife_dataset(root, user_ids))

    @classmethod
    def synthetic(cls, **config) -> tuple["Gepeto", list[SyntheticUser]]:
        """Generate a synthetic GeoLife-like corpus.

        Keyword arguments are :class:`~repro.geo.synthetic.SyntheticConfig`
        fields.  Returns the toolkit plus the per-user ground truth used
        to score attacks.
        """
        dataset, users = generate_dataset(SyntheticConfig(**config))
        return cls(dataset), users

    def save_geolife(self, root: str | Path) -> list[Path]:
        """Serialize in GeoLife PLT layout."""
        return write_geolife_dataset(self.dataset, root)

    # -- local (sequential) operations --------------------------------------
    def sample(self, window_s: float, technique: "str | SamplingTechnique" = "upper") -> "Gepeto":
        """Temporal down-sampling (Section V), sequential path."""
        return Gepeto(sample_dataset(self.dataset, window_s, technique))

    def sanitize(self, sanitizer: Sanitizer) -> "Gepeto":
        """Apply a geo-sanitization mechanism."""
        return Gepeto(sanitizer.sanitize_dataset(self.dataset))

    def kmeans(self, k: int, distance: str = "squared_euclidean", **kwargs) -> KMeansResult:
        """Cluster all traces with sequential k-means (Section VI)."""
        return kmeans_sequential(self.dataset.flat().coordinates(), k, distance, **kwargs)

    def djcluster(self, params: DJClusterParams = DJClusterParams()) -> DJClusterResult:
        """DJ-Cluster over the full dataset (Section VII), sequential."""
        return djcluster_sequential(self.dataset.flat(), params)

    def poi_attack_all(
        self, params: DJClusterParams = DJClusterParams()
    ) -> dict[str, list[PointOfInterestEstimate]]:
        """Run the POI inference attack on every user."""
        return {
            trail.user_id: poi_attack(trail, params)
            for trail in self.dataset.trails()
        }

    def deanonymize(
        self,
        target: "Gepeto",
        ground_truth: dict[str, str],
        params: DJClusterParams = DJClusterParams(),
    ) -> DeanonymizationResult:
        """Link ``target``'s pseudonymized trails back to this dataset."""
        return deanonymization_attack(self.dataset, target.dataset, ground_truth, params)

    def utility_versus(self, original: "Gepeto", cell_m: float = 500.0) -> UtilityReport:
        """Utility of this (sanitized) dataset relative to ``original``."""
        return utility_report(original.dataset, self.dataset, cell_m)

    def social_graph(self, params=None):
        """Co-location social-relation discovery over all users."""
        from repro.attacks.social import ColocationParams, colocation_graph

        return colocation_graph(self.dataset, params or ColocationParams())

    def semantic_places(self, user_id: str, **kwargs):
        """Semantic place labelling for one user; see
        :func:`repro.attacks.semantics.label_places`."""
        from repro.attacks.semantics import label_places

        return label_places(self.dataset.trail(user_id), **kwargs)

    def predictability(self, user_id: str, poi_coords, attach_radius_m: float = 200.0):
        """Song-et-al. predictability report of one user's visit sequence."""
        import numpy as np

        from repro.attacks.mmc import visit_sequence
        from repro.metrics.predictability import predictability_report

        visits = visit_sequence(
            self.dataset.trail(user_id).traces,
            np.asarray(poi_coords, dtype=float),
            attach_radius_m,
        )
        return predictability_report(visits)

    def visualize(self, width: int = 72, height: int = 24, markers=()) -> str:
        """ASCII density map of the dataset."""
        return ascii_density_map(self.dataset, width, height, markers)

    # -- distribution ---------------------------------------------------------
    def deploy(
        self,
        n_workers: int = 5,
        chunk_size_mb: int = 64,
        map_slots: int = 2,
        executor: str = "serial",
        cost_model: CostModel | None = None,
        path: str = "input/traces",
    ) -> "GepetoCluster":
        """Stand up a simulated Hadoop deployment and upload the dataset.

        Mirrors the paper's setup: the deployment overhead (~25 s of HDFS
        install + upload) is charged once and reported on the cluster.
        """
        cluster = paper_cluster(n_workers=n_workers, map_slots=map_slots)
        hdfs = SimulatedHDFS(cluster, chunk_size=chunk_size_mb * MB)
        runner = JobRunner(hdfs, cost_model=cost_model, executor=executor)
        hdfs.put_trace_array(path, self.dataset.flat().sort_by_time())
        return GepetoCluster(runner, path)

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.dataset)

    def __repr__(self) -> str:
        return f"Gepeto({self.dataset!r})"


@dataclass
class GepetoCluster:
    """GEPETO operations running on a simulated Hadoop deployment."""

    runner: JobRunner
    input_path: str

    @property
    def deploy_overhead_s(self) -> float:
        """One-time HDFS deployment + upload cost (paper: ~25 s)."""
        return self.runner.deploy_overhead_s

    def sample(
        self,
        window_s: float,
        technique: "str | SamplingTechnique" = "upper",
        output_path: str | None = None,
    ):
        """MapReduce sampling job; returns the :class:`JobResult`."""
        out = output_path or f"output/sampled-{int(window_s)}s-{SamplingTechnique.parse(technique).value}"
        self.runner.hdfs.delete(out, missing_ok=True)
        return run_sampling_job(self.runner, self.input_path, out, window_s, technique)

    def kmeans(self, k: int, distance: str = "squared_euclidean", **kwargs) -> KMeansResult:
        """MapReduced k-means over the uploaded dataset."""
        return run_kmeans_mapreduce(self.runner, self.input_path, k, distance, **kwargs)

    def djcluster(
        self, params: DJClusterParams = DJClusterParams(), input_path: str | None = None, **kwargs
    ) -> DJClusterResult:
        """MapReduced DJ-Cluster over the uploaded dataset."""
        return run_djcluster_mapreduce(
            self.runner, input_path or self.input_path, params, **kwargs
        )

    def build_rtree(
        self, n_partitions: int = 4, curve: str = "hilbert", **kwargs
    ) -> RTreeBuildResult:
        """Three-phase MapReduce R-tree construction (Figure 6)."""
        return build_rtree_mapreduce(
            self.runner, self.input_path, n_partitions, curve=curve, **kwargs
        )

    def learn_mmcs(self, poi_coords, input_path: str | None = None, **kwargs):
        """MapReduced per-user Mobility Markov Chain learning (the
        paper's planned MMC extension); see
        :func:`repro.attacks.mmc_mr.run_mmc_mapreduce`."""
        from repro.attacks.mmc_mr import run_mmc_mapreduce

        return run_mmc_mapreduce(
            self.runner, input_path or self.input_path, poi_coords, **kwargs
        )

    def sanitize(self, sanitizer, input_path: str | None = None, output_path: str = "output/sanitized"):
        """Map-only sanitization job over the uploaded dataset."""
        from repro.sanitization.base import run_sanitization_job

        self.runner.hdfs.delete(output_path, missing_ok=True)
        return run_sanitization_job(
            self.runner, sanitizer, input_path or self.input_path, output_path
        )

    def read_traces(self, path: str) -> TraceArray:
        """Fetch a job's trace output from HDFS."""
        return self.runner.hdfs.read_trace_array(path)
