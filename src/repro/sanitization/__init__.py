"""Geo-sanitization mechanisms (the paper's planned extensions).

"We also want to design MapReduced versions of geo-sanitization
mechanisms such as geographical masks that modify the spatial coordinate
of a mobility trace by adding some random noise, or aggregate several
mobility traces into a single spatial coordinate.  More sophisticated
geo-sanitization methods will also be integrated at a later stage, such
as spatial cloaking techniques and mix zones." (Section VIII.)

All mechanisms implement the :class:`~repro.sanitization.base.Sanitizer`
protocol: a pure transformation ``GeolocatedDataset -> GeolocatedDataset``
whose privacy/utility trade-off is measured by :mod:`repro.metrics`.
"""

from repro.sanitization.base import Sanitizer, SanitizerMapper, run_sanitization_job
from repro.sanitization.masks import (
    DonutMask,
    GaussianMask,
    PlanarLaplaceMask,
    RoundingMask,
    UniformNoiseMask,
)
from repro.sanitization.aggregation import SpatialAggregator, TemporalAggregator
from repro.sanitization.cloaking import SpatialCloaking
from repro.sanitization.cloaking_mr import run_cloaking_mapreduce
from repro.sanitization.mixzones import MixZone, MixZoneSanitizer
from repro.sanitization.pseudonyms import ANONYMOUS_ID, Pseudonymizer

__all__ = [
    "ANONYMOUS_ID",
    "Pseudonymizer",
    "Sanitizer",
    "SanitizerMapper",
    "run_sanitization_job",
    "DonutMask",
    "GaussianMask",
    "PlanarLaplaceMask",
    "UniformNoiseMask",
    "RoundingMask",
    "SpatialAggregator",
    "TemporalAggregator",
    "SpatialCloaking",
    "run_cloaking_mapreduce",
    "MixZone",
    "MixZoneSanitizer",
]
