"""Sanitizer protocol and the generic MapReduce sanitization job.

A sanitizer is a deterministic-given-its-seed transformation of a trace
array.  Trail-local mechanisms (masks, aggregation, mix zones) distribute
trivially as map-only jobs: the :class:`SanitizerMapper` applies the
sanitizer to each chunk, exactly like the sampling job of Section V.
Mechanisms needing cross-user context (spatial cloaking) document their
own semantics.
"""

from __future__ import annotations

import abc

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper
from repro.mapreduce.runner import JobResult, JobRunner
from repro.mapreduce.types import Chunk

__all__ = ["Sanitizer", "SanitizerMapper", "run_sanitization_job", "SANITIZER_CACHE_KEY"]

#: Distributed-cache key under which the driver ships the sanitizer object.
SANITIZER_CACHE_KEY = "sanitization.sanitizer"


class Sanitizer(abc.ABC):
    """Base class of all geo-sanitization mechanisms."""

    #: Whether the mechanism is per-chunk safe (pure map-only distribution).
    chunk_local: bool = True

    @abc.abstractmethod
    def sanitize_array(self, array: TraceArray) -> TraceArray:
        """Return the sanitized version of ``array`` (never in place)."""

    def sanitize_dataset(self, dataset: GeolocatedDataset) -> GeolocatedDataset:
        """Apply to every trail; trails sanitized to emptiness are dropped."""
        def _one(trail: Trail) -> Trail | None:
            out = self.sanitize_array(trail.traces)
            if len(out) == 0:
                return None
            return Trail(out.users[0], out.sort_by_time())

        return dataset.map_trails(_one)

    def __call__(self, dataset: GeolocatedDataset) -> GeolocatedDataset:
        return self.sanitize_dataset(dataset)


class SanitizerMapper(Mapper):
    """Map-only application of a cached sanitizer to each chunk."""

    def setup(self, ctx) -> None:
        self._sanitizer: Sanitizer = ctx.cache.get(SANITIZER_CACHE_KEY)
        if not self._sanitizer.chunk_local:
            raise ValueError(
                f"{type(self._sanitizer).__name__} is not chunk-local and "
                "cannot run as a map-only job"
            )

    def run(self, chunk: Chunk, ctx) -> None:
        out = self._sanitizer.sanitize_array(chunk.trace_array())
        if len(out):
            ctx.emit_array(out)


def run_sanitization_job(
    runner: JobRunner,
    sanitizer: Sanitizer,
    input_path: str,
    output_path: str,
    name: str = "sanitize",
) -> JobResult:
    """Run a sanitizer over an HDFS trace file as a map-only job."""
    runner.cache.replace(SANITIZER_CACHE_KEY, sanitizer)
    spec = JobSpec(
        name=name,
        mapper=SanitizerMapper,
        input_paths=[input_path],
        output_path=output_path,
        conf=Configuration({"sanitization.kind": type(sanitizer).__name__}),
        map_cost_factor=0.7,
    )
    return runner.run(spec)
