"""MapReduced spatial cloaking (the paper's "later stage" mechanism).

Spatial cloaking cannot run as a map-only job: deciding whether a cell
reaches k distinct users requires seeing *all* users in that cell, which
is exactly what a shuffle provides.  The decomposition:

* **map** — each task buckets its chunk's traces by
  ``(time window, cell at the coarsest level)`` and emits one block per
  bucket;
* **reduce** — each reducer receives every trace of its
  (window, macro-cell) buckets — a *closed world* for the adaptive
  algorithm, because :class:`~repro.sanitization.cloaking.SpatialCloaking`
  only ever coarsens up to that same macro level, so no decision ever
  needs data outside the bucket — and applies the sequential cloaking
  verbatim.

This makes the MapReduce result *exactly* equal to the sequential
dataset-level cloaking, for any chunking and any reducer count, which
the tests assert.
"""

from __future__ import annotations


import numpy as np

from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import TraceArray
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.types import Chunk
from repro.sanitization.cloaking import SpatialCloaking

__all__ = ["run_cloaking_mapreduce", "CloakBucketMapper", "CloakReducer"]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


def _macro_buckets(array: TraceArray, cloak: SpatialCloaking) -> np.ndarray:
    """(window, macro_lat, macro_lon) triple per trace: the quadtree cell
    at the coarsest level, shared with ``SpatialCloaking.base_cells``."""
    cells = cloak.base_cells(array).copy()
    shift = cloak.max_levels - 1
    cells[:, 1] >>= shift
    cells[:, 2] >>= shift
    return cells


def _cloak_from_conf(conf: Configuration) -> SpatialCloaking:
    return SpatialCloaking(
        k=conf.get_int("cloak.k"),
        base_cell_m=conf.get_float("cloak.base_cell_m"),
        window_s=conf.get_float("cloak.window_s"),
        max_levels=conf.get_int("cloak.max_levels"),
    )


class CloakBucketMapper(Mapper):
    """Route each trace to its (window, macro-cell) bucket."""

    def setup(self, ctx) -> None:
        self._cloak = _cloak_from_conf(ctx.conf)

    def run(self, chunk: Chunk, ctx) -> None:
        array = chunk.trace_array()
        if len(array) == 0:
            return
        buckets = _macro_buckets(array, self._cloak)
        _, inverse = np.unique(buckets, axis=0, return_inverse=True)
        for group in np.unique(inverse):
            mask = inverse == group
            block = array[mask]
            key = tuple(int(v) for v in buckets[np.flatnonzero(mask)[0]])
            ctx.emit(key, block, nbytes=len(block) * 64, n_records=len(block))


class CloakReducer(Reducer):
    """Apply the sequential adaptive cloaking within each closed bucket."""

    def setup(self, ctx) -> None:
        self._cloak = _cloak_from_conf(ctx.conf)

    def reduce(self, key, values, ctx) -> None:
        merged = TraceArray.concatenate(list(values))
        cloaked = self._cloak.sanitize_array(merged)
        if len(cloaked):
            ctx.emit_array(cloaked)


def run_cloaking_mapreduce(
    runner: JobRunner,
    cloak: SpatialCloaking,
    input_path: str,
    output_path: str,
    num_reducers: int | None = None,
):
    """Run k-anonymity spatial cloaking as a full MapReduce job."""
    conf = Configuration(
        {
            "cloak.k": cloak.k,
            "cloak.base_cell_m": cloak.base_cell_m,
            "cloak.window_s": cloak.window_s,
            "cloak.max_levels": cloak.max_levels,
        }
    )
    return runner.run(
        JobSpec(
            name="spatial-cloaking",
            mapper=CloakBucketMapper,
            reducer=CloakReducer,
            input_paths=[input_path],
            output_path=output_path,
            conf=conf,
            num_reducers=num_reducers or max(2, runner.cluster.total_reduce_slots() // 2),
            map_cost_factor=0.9,
            reduce_cost_factor=1.5,
        )
    )
