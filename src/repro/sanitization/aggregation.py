"""Aggregation sanitizers: merging traces in space or time.

"...or aggregate several mobility traces into a single spatial
coordinate" (Section VIII).  Two mechanisms:

* :class:`SpatialAggregator` — replaces each trace's coordinate by the
  centroid of its spatial-grid cell *computed over the trail*, so several
  nearby traces collapse onto one shared coordinate;
* :class:`TemporalAggregator` — the down-sampling of Section V reused as
  a sanitizer (one representative trace per time window).
"""

from __future__ import annotations


import numpy as np

from repro.algorithms.sampling import SamplingTechnique, sample_array
from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import TraceArray
from repro.sanitization.base import Sanitizer

__all__ = ["SpatialAggregator", "TemporalAggregator"]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


class SpatialAggregator(Sanitizer):
    """Collapse each grid cell's traces onto the cell's mean coordinate.

    Unlike :class:`~repro.sanitization.masks.RoundingMask` (cell centre),
    the aggregate is the *centroid of the observed traces* in the cell —
    utility-preserving for density analyses, privacy-degrading for exact
    positions.  The centroid is computed within the processed array, so
    this mechanism is chunk-local by construction: per-chunk centroids
    approximate the global ones (documented MapReduce semantics).
    """

    def __init__(self, cell_m: float):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self.cell_m = cell_m

    def _cells(self, array: TraceArray) -> np.ndarray:
        cell_lat = self.cell_m / _M_PER_DEG_LAT
        lat_band = np.floor(array.latitude / cell_lat)
        cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
        cell_lon = self.cell_m / (_M_PER_DEG_LAT * cos_band)
        lon_band = np.floor(array.longitude / cell_lon)
        cells = np.stack([lat_band.astype(np.int64), lon_band.astype(np.int64)], axis=1)
        _, inverse = np.unique(cells, axis=0, return_inverse=True)
        return inverse

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        if len(array) == 0:
            return array
        group = self._cells(array)
        n_groups = int(group.max()) + 1
        counts = np.bincount(group, minlength=n_groups).astype(np.float64)
        mean_lat = np.bincount(group, weights=array.latitude, minlength=n_groups) / counts
        mean_lon = np.bincount(group, weights=array.longitude, minlength=n_groups) / counts
        return array.with_coordinates(mean_lat[group], mean_lon[group])

    def __repr__(self) -> str:
        return f"SpatialAggregator(cell_m={self.cell_m})"


class TemporalAggregator(Sanitizer):
    """Down-sampling (Section V) used as a sanitization mechanism."""

    def __init__(self, window_s: float, technique: "str | SamplingTechnique" = "upper"):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.technique = SamplingTechnique.parse(technique)

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        return sample_array(array, self.window_s, self.technique)

    def __repr__(self) -> str:
        return f"TemporalAggregator(window_s={self.window_s}, technique={self.technique.value})"
