"""Geographical masks: per-trace coordinate perturbation.

"Geographical masks ... modify the spatial coordinate of a mobility trace
by adding some random noise" (Section VIII).  Three classic masks:

* :class:`GaussianMask` — isotropic Gaussian displacement of a given
  standard deviation in metres;
* :class:`UniformNoiseMask` — displacement uniform within a disc of a
  given radius;
* :class:`RoundingMask` — snap coordinates to a grid (deterministic
  coarsening, a.k.a. truncation masking).

Noise is derived from each trace's own content via the counter-based RNG
(:mod:`repro.utils.hashrng`), so the MapReduced application over any
chunking equals the sequential one.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import TraceArray
from repro.sanitization.base import Sanitizer
from repro.utils.hashrng import hash_normal, hash_uniform, trace_keys

__all__ = [
    "GaussianMask",
    "UniformNoiseMask",
    "RoundingMask",
    "DonutMask",
    "PlanarLaplaceMask",
]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


def _displace(array: TraceArray, north_m: np.ndarray, east_m: np.ndarray) -> TraceArray:
    """Apply per-trace metric displacements, converting to degrees."""
    lat = array.latitude
    cos_lat = np.maximum(np.cos(np.radians(lat)), 1e-9)
    new_lat = np.clip(lat + north_m / _M_PER_DEG_LAT, -90.0, 90.0)
    new_lon = array.longitude + east_m / (_M_PER_DEG_LAT * cos_lat)
    # Keep longitude wrapped into [-180, 180].
    new_lon = ((new_lon + 180.0) % 360.0) - 180.0
    return array.with_coordinates(new_lat, new_lon)


class GaussianMask(Sanitizer):
    """Add isotropic Gaussian noise of ``sigma_m`` metres to coordinates."""

    def __init__(self, sigma_m: float, seed: int = 0):
        if sigma_m < 0:
            raise ValueError("sigma_m must be non-negative")
        self.sigma_m = sigma_m
        self.seed = seed

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        if len(array) == 0 or self.sigma_m == 0:
            return array
        keys = trace_keys(array.latitude, array.longitude, array.timestamp, self.seed)
        north = hash_normal(keys, stream=0) * self.sigma_m
        east = hash_normal(keys, stream=1) * self.sigma_m
        return _displace(array, north, east)

    def __repr__(self) -> str:
        return f"GaussianMask(sigma_m={self.sigma_m}, seed={self.seed})"


class UniformNoiseMask(Sanitizer):
    """Displace each trace uniformly within a disc of ``radius_m`` metres."""

    def __init__(self, radius_m: float, seed: int = 0):
        if radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        self.radius_m = radius_m
        self.seed = seed

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        if len(array) == 0 or self.radius_m == 0:
            return array
        keys = trace_keys(array.latitude, array.longitude, array.timestamp, self.seed)
        # Uniform in a disc: r ~ R*sqrt(U), theta ~ 2*pi*U.
        r = self.radius_m * np.sqrt(hash_uniform(keys, stream=0))
        theta = 2.0 * math.pi * hash_uniform(keys, stream=1)
        return _displace(array, r * np.sin(theta), r * np.cos(theta))

    def __repr__(self) -> str:
        return f"UniformNoiseMask(radius_m={self.radius_m}, seed={self.seed})"


class PlanarLaplaceMask(Sanitizer):
    """Geo-indistinguishability: planar Laplace noise (Andrés et al. 2013).

    The mechanism achieving ε-geo-indistinguishability: displacement
    direction uniform, radius drawn from the polar Laplace distribution
    with density ``ε² r e^(-εr) / (2π)``.  Inverse-CDF sampling uses the
    Lambert-W function: ``r = -(1/ε)(W₋₁((u-1)/e) + 1)``.

    ``epsilon`` is in 1/metres: privacy within radius ``r`` degrades as
    ``ε·r``; the expected displacement is ``2/ε`` metres.
    """

    def __init__(self, epsilon: float, seed: int = 0):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.seed = seed

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        if len(array) == 0:
            return array
        from scipy.special import lambertw

        keys = trace_keys(array.latitude, array.longitude, array.timestamp, self.seed)
        u = hash_uniform(keys, stream=0)
        # Inverse CDF of the polar Laplace radius (the -1 branch).
        w = np.real(lambertw((u - 1.0) / np.e, k=-1))
        r = -(1.0 / self.epsilon) * (w + 1.0)
        theta = 2.0 * math.pi * hash_uniform(keys, stream=1)
        return _displace(array, r * np.sin(theta), r * np.cos(theta))

    @property
    def expected_displacement_m(self) -> float:
        return 2.0 / self.epsilon

    def __repr__(self) -> str:
        return f"PlanarLaplaceMask(epsilon={self.epsilon}, seed={self.seed})"


class DonutMask(Sanitizer):
    """Donut geographical masking: displacement in an annulus.

    Each trace moves a distance uniform in ``[r_min, r_max]`` metres in a
    uniform direction — the classic public-health variant of geographic
    masking that *guarantees* a minimum displacement (plain noise can
    leave points nearly unmoved, which re-identifies isolated homes).
    """

    def __init__(self, r_min: float, r_max: float, seed: int = 0):
        if not 0 <= r_min <= r_max:
            raise ValueError("need 0 <= r_min <= r_max")
        self.r_min = r_min
        self.r_max = r_max
        self.seed = seed

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        if len(array) == 0 or self.r_max == 0:
            return array
        keys = trace_keys(array.latitude, array.longitude, array.timestamp, self.seed)
        # Uniform area density over the annulus: r = sqrt(U*(b^2-a^2)+a^2).
        u = hash_uniform(keys, stream=0)
        r = np.sqrt(u * (self.r_max**2 - self.r_min**2) + self.r_min**2)
        theta = 2.0 * math.pi * hash_uniform(keys, stream=1)
        return _displace(array, r * np.sin(theta), r * np.cos(theta))

    def __repr__(self) -> str:
        return f"DonutMask(r_min={self.r_min}, r_max={self.r_max}, seed={self.seed})"


class RoundingMask(Sanitizer):
    """Snap coordinates to the centres of a ``cell_m``-metre grid.

    Deterministic coarsening: all traces in one cell become spatially
    indistinguishable, providing grid-level k-anonymity of location.
    """

    def __init__(self, cell_m: float):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self.cell_m = cell_m

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        if len(array) == 0:
            return array
        cell_lat = self.cell_m / _M_PER_DEG_LAT
        lat = (np.floor(array.latitude / cell_lat) + 0.5) * cell_lat
        # Longitude cell width follows each trace's own snapped-latitude
        # band, keeping the mask chunk-invariant (no dataset-level state).
        cos_band = np.maximum(np.cos(np.radians(lat)), 1e-9)
        cell_lon = self.cell_m / (_M_PER_DEG_LAT * cos_band)
        lon = (np.floor(array.longitude / cell_lon) + 0.5) * cell_lon
        return array.with_coordinates(np.clip(lat, -90.0, 90.0), lon)

    def __repr__(self) -> str:
        return f"RoundingMask(cell_m={self.cell_m})"
