"""Spatial cloaking: k-anonymous location disclosure.

Spatial cloaking (Gruteser & Grunwald 2003, cited in Section VIII)
releases a trace's location only at a granularity coarse enough that at
least ``k`` distinct users share the reported area within the same time
window.  This implementation uses a quadtree-style grid: starting from a
fine cell, the cell is repeatedly doubled until it covers ≥ k distinct
users in that window; traces whose cell never reaches k users (even at
the coarsest level) are suppressed.

Cloaking inherently needs cross-user context, so it is **not** chunk-local
(``chunk_local = False``): the MapReduce adaptation must shuffle traces by
time window first, which :func:`cloak_dataset` documents and the facade's
pipeline performs dataset-side.
"""

from __future__ import annotations


import numpy as np

from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import GeolocatedDataset, TraceArray
from repro.sanitization.base import Sanitizer

__all__ = ["SpatialCloaking"]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


class SpatialCloaking(Sanitizer):
    """k-anonymity cloaking over (time window, adaptive grid cell).

    Parameters
    ----------
    k:
        Minimum number of distinct users that must share the reported
        cell within a time window.
    base_cell_m:
        Finest grid cell size (the precision ceiling of the output).
    window_s:
        Temporal resolution of the anonymity requirement.
    max_levels:
        How many doublings are attempted before suppressing the traces.
    """

    chunk_local = False

    def __init__(self, k: int, base_cell_m: float = 250.0, window_s: float = 3600.0, max_levels: int = 6):
        if k < 1:
            raise ValueError("k must be >= 1")
        if base_cell_m <= 0 or window_s <= 0:
            raise ValueError("base_cell_m and window_s must be positive")
        if max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        self.k = k
        self.base_cell_m = base_cell_m
        self.window_s = window_s
        self.max_levels = max_levels

    def base_cells(self, array: TraceArray) -> np.ndarray:
        """(window, base_lat, base_lon) per trace at the finest level.

        Coarser levels are derived by right-shifting the integer bands,
        so the hierarchy is a true quadtree: every level-``l`` cell is
        the union of exactly ``4^l`` base cells.  This nesting is what
        lets the MapReduce adaptation (:mod:`repro.sanitization.cloaking_mr`)
        cloak each coarsest-level bucket independently yet exactly.
        """
        cell_lat = self.base_cell_m / _M_PER_DEG_LAT
        lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
        cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
        cell_lon = self.base_cell_m / (_M_PER_DEG_LAT * cos_band)
        lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
        window = np.floor_divide(array.timestamp, self.window_s).astype(np.int64)
        return np.stack([window, lat_band, lon_band], axis=1)

    def _cell_ids(self, array: TraceArray, level: int) -> np.ndarray:
        cells = self.base_cells(array).copy()
        cells[:, 1] >>= level  # arithmetic shift floors negatives too
        cells[:, 2] >>= level
        _, inverse = np.unique(cells, axis=0, return_inverse=True)
        return inverse

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        """Cloak an array that contains *all* users of the release.

        Applying this to a single-user slice suppresses everything for
        k > 1 — by design: anonymity cannot be computed per user.
        """
        n = len(array)
        if n == 0:
            return array
        lat = array.latitude.copy()
        lon = array.longitude.copy()
        resolved = np.zeros(n, dtype=bool)
        users = array.user_index
        for level in range(self.max_levels):
            pending = ~resolved
            if not pending.any():
                break
            groups = self._cell_ids(array, level)
            # Count distinct users per group over pending traces only is
            # wrong — anonymity counts everyone present in the cell.
            pairs = np.stack([groups, users.astype(np.int64)], axis=1)
            uniq_pairs = np.unique(pairs, axis=0)
            users_per_group = np.bincount(uniq_pairs[:, 0], minlength=int(groups.max()) + 1)
            ok = users_per_group[groups] >= self.k
            newly = pending & ok
            if newly.any():
                # Report the group centroid at this level.
                n_groups = int(groups.max()) + 1
                counts = np.bincount(groups, minlength=n_groups).astype(np.float64)
                glat = np.bincount(groups, weights=array.latitude, minlength=n_groups) / counts
                glon = np.bincount(groups, weights=array.longitude, minlength=n_groups) / counts
                lat[newly] = glat[groups[newly]]
                lon[newly] = glon[groups[newly]]
                resolved |= newly
        kept = array.with_coordinates(lat, lon)
        return kept[resolved]

    def sanitize_dataset(self, dataset: GeolocatedDataset) -> GeolocatedDataset:
        """Cloak the whole dataset at once (the correct cross-user scope)."""
        cloaked = self.sanitize_array(dataset.flat())
        return GeolocatedDataset.from_array(cloaked)

    def __repr__(self) -> str:
        return (
            f"SpatialCloaking(k={self.k}, base_cell_m={self.base_cell_m}, "
            f"window_s={self.window_s}, max_levels={self.max_levels})"
        )
