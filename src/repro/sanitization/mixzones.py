"""Mix zones: pseudonym churn inside designated regions.

A mix zone (Beresford & Stajano 2004, cited in Section VIII) is a region
where no location is reported; users entering it emerge with a *fresh
pseudonym*, so an observer cannot link the trajectory segments before and
after the zone.  The sanitizer:

1. suppresses every trace falling inside a zone;
2. splits each trail at zone traversals;
3. re-attributes each resulting segment to a fresh pseudonym derived
   deterministically from the user's seed and the segment index.

The anonymity a mix zone provides grows with how many users traverse it
per unit time — measured by :func:`repro.metrics.privacy.mixzone_anonymity_sets`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.sanitization.base import Sanitizer
from repro.utils.hashrng import splitmix64

__all__ = ["MixZone", "MixZoneSanitizer"]


@dataclass(frozen=True)
class MixZone:
    """A circular mix zone."""

    latitude: float
    longitude: float
    radius_m: float

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("radius_m must be positive")

    def contains(self, lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the zone (vectorized)."""
        return np.asarray(haversine_m(self.latitude, self.longitude, lat, lon)) <= self.radius_m


class MixZoneSanitizer(Sanitizer):
    """Suppress in-zone traces and change pseudonyms across zones."""

    def __init__(self, zones: list[MixZone], seed: int = 0):
        if not zones:
            raise ValueError("at least one mix zone is required")
        self.zones = list(zones)
        self.seed = seed

    def _inside_any(self, array: TraceArray) -> np.ndarray:
        inside = np.zeros(len(array), dtype=bool)
        lat, lon = array.latitude, array.longitude
        for zone in self.zones:
            inside |= zone.contains(lat, lon)
        return inside

    def _pseudonym(self, user_id: str, segment: int) -> str:
        # FNV-1a over the user id keeps pseudonyms stable across processes
        # (Python's str hash is salted per interpreter).
        h = 0xCBF29CE484222325
        for byte in user_id.encode("utf-8"):
            h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        mixed = np.uint64(h) ^ np.uint64(segment * 2654435761 + self.seed)
        token = splitmix64(np.array([mixed], dtype=np.uint64))[0]
        return f"pseud-{int(token):016x}"

    def sanitize_array(self, array: TraceArray) -> TraceArray:
        """Per-array application: suppress + re-pseudonymize segments.

        Assumes the array holds whole trails (the dataset-level entry
        point passes one trail at a time).
        """
        if len(array) == 0:
            return array
        ordered = array.sort_by_time()
        inside = self._inside_any(ordered)
        outside = ordered[~inside]
        if len(outside) == 0:
            return outside
        # Segment index = number of suppressed gaps crossed so far.
        inside_cum = np.cumsum(inside)
        seg_raw = inside_cum[~inside]
        # Only a *gap* (>=1 suppressed trace between two kept ones) forces
        # a new pseudonym; renumber to consecutive segment ids.
        _, segments = np.unique(seg_raw, return_inverse=True)
        users = outside.user_ids()
        new_users = [
            self._pseudonym(str(u), int(s)) for u, s in zip(users, segments)
        ]
        return TraceArray.from_columns(
            new_users,
            outside.latitude.copy(),
            outside.longitude.copy(),
            outside.timestamp.copy(),
            outside.altitude.copy(),
        )

    def sanitize_dataset(self, dataset: GeolocatedDataset) -> GeolocatedDataset:
        out = GeolocatedDataset()
        for trail in dataset.trails():
            sanitized = self.sanitize_array(trail.traces)
            if not len(sanitized):
                continue
            # One output trail per fresh pseudonym.
            for idx, pseud in enumerate(sanitized.users):
                mask = sanitized.user_index == idx
                if mask.any():
                    out.add_trail(Trail(pseud, sanitized[mask].sort_by_time()))
        return out

    def __repr__(self) -> str:
        return f"MixZoneSanitizer(zones={len(self.zones)}, seed={self.seed})"
