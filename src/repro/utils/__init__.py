"""Shared utilities (deterministic hashing RNG, misc helpers)."""

from repro.utils.hashrng import splitmix64, trace_keys, hash_uniform, hash_normal

__all__ = ["splitmix64", "trace_keys", "hash_uniform", "hash_normal"]
