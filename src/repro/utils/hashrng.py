"""Counter-based deterministic randomness for per-trace noise.

Sanitizers that add random noise must produce the *same* noise for a
given trace regardless of how the dataset is chunked — otherwise the
MapReduced sanitization would not equal the sequential one, and reruns
would not be reproducible.  Sequential RNG streams cannot provide that
(the i-th draw depends on chunk boundaries), so noise is derived from a
**hash of the trace's own content** (timestamp + coordinate bits) mixed
with a user-chosen seed: a counter-based RNG in the Philox spirit, built
from the splitmix64 finalizer and fully vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "trace_keys", "hash_uniform", "hash_normal"]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function."""
    z = (np.asarray(x, dtype=np.uint64) + _GAMMA).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * _M1
    z = (z ^ (z >> np.uint64(27))) * _M2
    return z ^ (z >> np.uint64(31))


def _float_bits(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64)).view(np.uint64)


def trace_keys(lat: np.ndarray, lon: np.ndarray, ts: np.ndarray, seed: int) -> np.ndarray:
    """A 64-bit key per trace, chunk-invariant and seed-dependent."""
    with np.errstate(all="ignore"):
        k = _float_bits(ts)
        k = splitmix64(k ^ splitmix64(_float_bits(lat)))
        k = splitmix64(k ^ splitmix64(_float_bits(lon)))
        return splitmix64(k ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF))


def hash_uniform(keys: np.ndarray, stream: int = 0) -> np.ndarray:
    """Uniform (0, 1) draws from 64-bit keys; ``stream`` decorrelates
    multiple draws per key (e.g. the two Box–Muller uniforms)."""
    offset = np.uint64((stream * int(_GAMMA)) & 0xFFFFFFFFFFFFFFFF)
    mixed = splitmix64(np.asarray(keys, dtype=np.uint64) + offset)
    # Top 53 bits -> (0, 1); +0.5 ulp keeps the draw strictly positive
    # (Box-Muller takes a log of it).
    return (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53) + 2.0**-54


def hash_normal(keys: np.ndarray, stream: int = 0) -> np.ndarray:
    """Standard normal draws from 64-bit keys (Box–Muller transform)."""
    u1 = hash_uniform(keys, stream=2 * stream)
    u2 = hash_uniform(keys, stream=2 * stream + 1)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
