"""Privacy-vs-utility frontier sweeps over (sanitizer × attack) cells.

A sanitization mechanism is only worth its utility cost if it actually
blunts the attack.  This harness answers that question the way the
paper's cluster would: every (mechanism, parameter) cell becomes a
*tenant* of one shared :class:`~repro.mapreduce.service.JobService`, the
MapReduce linkage attack (:mod:`repro.attacks.linkage_mr`) runs against
each tenant's sanitized release under fair-share scheduling, and the
harvested points — attack success on one axis, utility damage on the
other — form the privacy-vs-utility frontier.

Inputs are an (identified) training array and a pseudonymized target
release plus ground truth, e.g. from
:func:`~repro.attacks.linkage_mr.split_linkage_corpus` or
:func:`~repro.attacks.linkage_mr.synthetic_linkage_corpus`.  Mechanisms
are ``name:param`` specs (``gaussian:200``, ``rounding:500``, …, parsed
by the CLI's mechanism grammar); the reserved spec ``none`` measures the
pseudonymize-only release every frontier needs as its origin.

Each cell records:

* **privacy axes** — linkage success rate (the attack), plus the
  deterministic window re-identification risk and the achieved
  k-anonymity floor of the release;
* **utility axes** — mean spatial distortion in metres and the surviving
  trace-volume ratio;
* the attack's audit trail (pairs scored vs cross product, signature).

``python -m repro sweep`` drives this from the command line and renders
the frontier table; ``FrontierResult.to_doc``/``save`` produce the JSON
artifact.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.linkage_mr import run_linkage_attack
from repro.geo.trace import TraceArray
from repro.metrics.privacy import window_reidentification_risk
from repro.metrics.utility import spatial_distortion_m, trace_volume_ratio
from repro.observability.events import EventKind

__all__ = ["SweepCell", "FrontierResult", "run_sweep", "tenant_slug"]


def tenant_slug(spec: str) -> str:
    """A mechanism spec as a path/tenant-safe slug (``gaussian:200`` →
    ``gaussian-200``)."""
    slug = re.sub(r"[^A-Za-z0-9.]+", "-", spec.strip()).strip("-")
    return slug or "none"


def _sanitize(spec: str, release: TraceArray) -> TraceArray:
    if spec.strip().lower() == "none":
        return release
    from repro.cli import parse_mechanism

    return parse_mechanism(spec).sanitize_array(release)


def _json_safe(value: float) -> "float | None":
    return None if value != value else float(value)


@dataclass
class SweepCell:
    """One (mechanism × attack) point of the frontier."""

    mechanism: str
    tenant: str
    n_targets: int
    linked: int
    success_rate: float
    pairs_scored: int
    cross_product: int
    #: deterministic release-level risk (singleton-bucket exposure).
    window_risk: float
    min_anonymity: int
    #: mean displacement of surviving matched traces (None: nothing matched).
    distortion_m: "float | None"
    volume_ratio: float
    sim_seconds: float
    signature: str

    def to_doc(self) -> dict:
        return {
            "mechanism": self.mechanism,
            "tenant": self.tenant,
            "n_targets": self.n_targets,
            "linked": self.linked,
            "success_rate": round(self.success_rate, 9),
            "pairs_scored": self.pairs_scored,
            "cross_product": self.cross_product,
            "window_risk": round(self.window_risk, 9),
            "min_anonymity": self.min_anonymity,
            "distortion_m": self.distortion_m,
            "volume_ratio": round(self.volume_ratio, 9),
            "sim_seconds": round(self.sim_seconds, 6),
            "signature": self.signature,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "SweepCell":
        return cls(**doc)


@dataclass
class FrontierResult:
    """The harvested privacy-vs-utility frontier."""

    n_train_users: int
    n_target_users: int
    cells: list[SweepCell] = field(default_factory=list)
    #: the shared service's rendered fair-share report.
    service_report: str = ""

    def to_doc(self) -> dict:
        return {
            "kind": "privacy_utility_frontier",
            "n_train_users": self.n_train_users,
            "n_target_users": self.n_target_users,
            "cells": [c.to_doc() for c in self.cells],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FrontierResult":
        return cls(
            n_train_users=doc["n_train_users"],
            n_target_users=doc["n_target_users"],
            cells=[SweepCell.from_doc(c) for c in doc["cells"]],
        )

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n")
        return path

    def render(self) -> str:
        header = (
            f"privacy-vs-utility frontier · {self.n_target_users} targets "
            f"vs {self.n_train_users} training users"
        )
        rows = [
            header,
            "",
            f"{'mechanism':<16} {'success':>8} {'linked':>7} {'risk':>7} "
            f"{'min-k':>5} {'distort(m)':>10} {'kept':>6} {'pairs':>10}",
        ]
        for cell in self.cells:
            distortion = (
                f"{cell.distortion_m:10.1f}" if cell.distortion_m is not None else f"{'—':>10}"
            )
            rows.append(
                f"{cell.mechanism:<16} {cell.success_rate:8.2%} {cell.linked:>7} "
                f"{cell.window_risk:7.2%} {cell.min_anonymity:>5} {distortion} "
                f"{cell.volume_ratio:6.2f} "
                f"{cell.pairs_scored}/{cell.cross_product:>{1}}"
            )
        return "\n".join(rows)


def run_sweep(
    training: TraceArray,
    target: TraceArray,
    ground_truth: dict[str, str],
    mechanisms: list[str],
    params: DJClusterParams | None = None,
    max_pois: int = 8,
    max_match_dist_m: float = 500.0,
    n_workers: int = 3,
    chunk_size: int = 256 * 1024,
    executor: str = "serial",
    result_cache: bool = True,
    use_persistent_index: bool = True,
    history_path: "str | None" = None,
) -> FrontierResult:
    """Attack every mechanism's release concurrently through one service.

    Each mechanism spec becomes a tenant named :func:`tenant_slug`; the
    tenant's thread writes its sanitized release under its own
    ``tenants/<slug>/`` prefix, runs the MapReduce linkage attack via
    ``service.client(slug)``, and emits a ``sweep_cell`` history event.
    The release-level metrics (risk, distortion, volume) are computed
    driver-side so they land in the artifact even if a cell's attack
    links nothing.
    """
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.service import JobService

    if not mechanisms:
        raise ValueError("run_sweep needs at least one mechanism spec")
    slugs = [tenant_slug(m) for m in mechanisms]
    if len(set(slugs)) != len(slugs):
        raise ValueError(f"mechanism specs collide after slugging: {slugs}")
    releases = {slug: _sanitize(spec, target) for slug, spec in zip(slugs, mechanisms)}

    hdfs = SimulatedHDFS(paper_cluster(n_workers), chunk_size=chunk_size, seed=0)
    service = JobService(
        hdfs,
        tenants={slug: 1.0 for slug in slugs},
        executor=executor,
        result_cache=result_cache,
    )
    outcomes: dict[str, object] = {}
    errors: dict[str, BaseException] = {}

    def cell_workload(slug: str, spec: str) -> None:
        client = service.client(slug)
        train_path = f"tenants/{slug}/input/train"
        release_path = f"tenants/{slug}/input/target"
        try:
            client.hdfs.put_trace_array(train_path, training, record_bytes=64)
            client.hdfs.put_trace_array(release_path, releases[slug], record_bytes=64)
            outcome = run_linkage_attack(
                client,
                train_path,
                release_path,
                ground_truth,
                params=params,
                max_pois=max_pois,
                max_match_dist_m=max_match_dist_m,
                workdir=f"tenants/{slug}/tmp/linkage",
                use_persistent_index=use_persistent_index,
            )
            outcomes[slug] = outcome
            client.history.emit(
                EventKind.SWEEP_CELL,
                "linkage-sweep",
                client.history.clock,
                mechanism=spec,
                tenant=slug,
                success_rate=outcome.result.success_rate,
                linked=sum(
                    1 for v in outcome.result.linkage.values() if v is not None
                ),
                n_targets=outcome.result.n_targets,
                sim_seconds=outcome.sim_seconds,
            )
        except BaseException as exc:  # reported after join, with its tenant
            errors[slug] = exc

    try:
        threads = [
            threading.Thread(target=cell_workload, args=(slug, spec), name=slug)
            for slug, spec in zip(slugs, mechanisms)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = service.report().render()
        if history_path is not None:
            service.client(slugs[0]).history.save(history_path)
    finally:
        service.close()
    if errors:
        slug, exc = sorted(errors.items())[0]
        raise RuntimeError(f"sweep cell {slug!r} failed: {exc!r}") from exc

    frontier = FrontierResult(
        n_train_users=len(set(training.user_ids().tolist())),
        n_target_users=len(set(target.user_ids().tolist())),
        service_report=report,
    )
    for slug, spec in zip(slugs, mechanisms):
        outcome = outcomes[slug]
        release = releases[slug]
        risk = window_reidentification_risk(release)
        mean_distortion, _median = spatial_distortion_m(target, release)
        frontier.cells.append(
            SweepCell(
                mechanism=spec,
                tenant=slug,
                n_targets=outcome.result.n_targets,
                linked=sum(
                    1 for v in outcome.result.linkage.values() if v is not None
                ),
                success_rate=outcome.result.success_rate,
                pairs_scored=outcome.pairs_scored,
                cross_product=outcome.cross_product,
                window_risk=risk.risk,
                min_anonymity=risk.min_anonymity,
                distortion_m=_json_safe(mean_distortion),
                volume_ratio=trace_volume_ratio(target, release),
                sim_seconds=outcome.sim_seconds,
                signature=outcome.signature(),
            )
        )
    return frontier
