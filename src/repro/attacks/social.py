"""Social-relation discovery from co-location (Section II).

One of the paper's inference-attack objectives: "discover social
relations between individuals, by considering that two individuals that
are in contact during a non-negligible amount of time share some kind of
social link (false positive may happen)".

Two individuals are *in contact* during a time window when they have
traces within ``contact_radius_m`` of each other inside the same window.
The attack accumulates contact time per pair and emits a weighted social
graph (a :class:`networkx.Graph`), keeping only pairs above a minimum
total contact duration.

The implementation buckets traces into (time window, coarse spatial
cell) pairs so candidate generation is a hash join rather than an
all-pairs distance scan, then refines candidates with exact Haversine
distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.synthetic import KM_PER_DEG_LAT
from repro.geo.trace import GeolocatedDataset, TraceArray

__all__ = ["ColocationParams", "colocation_graph", "contact_events"]

_M_PER_DEG_LAT = KM_PER_DEG_LAT * 1000.0


@dataclass(frozen=True)
class ColocationParams:
    """Parameters of the co-location attack.

    ``window_s`` is the temporal resolution of "being there at the same
    time"; each co-located window contributes ``window_s`` seconds of
    contact.  ``min_contact_s`` is the "non-negligible amount of time"
    threshold below which a pair is considered coincidental.
    """

    contact_radius_m: float = 50.0
    window_s: float = 300.0
    min_contact_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.contact_radius_m <= 0 or self.window_s <= 0:
            raise ValueError("contact_radius_m and window_s must be positive")
        if self.min_contact_s < 0:
            raise ValueError("min_contact_s must be non-negative")


def _window_cells(array: TraceArray, params: ColocationParams) -> np.ndarray:
    """(window, cell_lat, cell_lon) bucket per trace, cell = radius-sized."""
    cell_m = params.contact_radius_m
    cell_lat = cell_m / _M_PER_DEG_LAT
    lat_band = np.floor(array.latitude / cell_lat).astype(np.int64)
    cos_band = np.maximum(np.cos(np.radians((lat_band + 0.5) * cell_lat)), 1e-9)
    cell_lon = cell_m / (_M_PER_DEG_LAT * cos_band)
    lon_band = np.floor(array.longitude / cell_lon).astype(np.int64)
    window = np.floor_divide(array.timestamp, params.window_s).astype(np.int64)
    return np.stack([window, lat_band, lon_band], axis=1)


def contact_events(
    dataset: GeolocatedDataset | TraceArray,
    params: ColocationParams = ColocationParams(),
) -> dict[tuple[str, str], float]:
    """Total contact seconds per (user_a, user_b) pair, a < b.

    A pair is in contact during a window if any two of their traces in
    that window are within ``contact_radius_m`` (checked exactly with
    Haversine after a coarse cell join over the window's 3x3 cell
    neighbourhood).
    """
    array = dataset.flat() if isinstance(dataset, GeolocatedDataset) else dataset
    if len(array) == 0:
        return {}
    buckets = _window_cells(array, params)
    users = array.user_index
    # Index traces by bucket for the hash join.
    order = np.lexsort((buckets[:, 2], buckets[:, 1], buckets[:, 0]))
    sorted_buckets = buckets[order]
    bucket_index: dict[tuple[int, int, int], list[int]] = {}
    start = 0
    for i in range(1, len(order) + 1):
        if i == len(order) or not np.array_equal(sorted_buckets[i], sorted_buckets[start]):
            key = tuple(int(v) for v in sorted_buckets[start])
            bucket_index[key] = order[start:i].tolist()
            start = i

    lat, lon, ts = array.latitude, array.longitude, array.timestamp
    user_names = array.users
    #: (pair) -> set of windows in contact.
    contact_windows: dict[tuple[str, str], set[int]] = {}
    for (window, clat, clon), members in bucket_index.items():
        # Gather this cell plus its 8 neighbours (same window) so pairs
        # straddling a cell boundary are not missed.
        candidates: list[int] = []
        for dlat in (-1, 0, 1):
            for dlon in (-1, 0, 1):
                candidates.extend(
                    bucket_index.get((window, clat + dlat, clon + dlon), ())
                )
        if len(candidates) < 2:
            continue
        cand = np.array(sorted(set(candidates)), dtype=np.int64)
        cand_users = users[cand]
        if len(np.unique(cand_users)) < 2:
            continue
        # Exact refinement, restricted to members of the centre cell vs
        # all candidates (each pair is seen from its own cells; the set
        # union of windows dedupes).
        mem = np.array(members, dtype=np.int64)
        d = haversine_m(
            lat[mem][:, None], lon[mem][:, None], lat[cand][None, :], lon[cand][None, :]
        )
        close = np.atleast_2d(d) <= params.contact_radius_m
        mi, ci = np.nonzero(close)
        for a, b in zip(mem[mi], cand[ci]):
            ua, ub = int(users[a]), int(users[b])
            if ua == ub:
                continue
            pair = tuple(sorted((user_names[ua], user_names[ub])))
            contact_windows.setdefault(pair, set()).add(int(window))
    return {
        pair: len(windows) * params.window_s
        for pair, windows in contact_windows.items()
    }


def colocation_graph(
    dataset: GeolocatedDataset | TraceArray,
    params: ColocationParams = ColocationParams(),
) -> nx.Graph:
    """The inferred social graph: nodes are users, edge weight is total
    contact seconds; only pairs above ``min_contact_s`` survive."""
    graph = nx.Graph()
    array = dataset.flat() if isinstance(dataset, GeolocatedDataset) else dataset
    graph.add_nodes_from(array.users)
    for (a, b), seconds in contact_events(dataset, params).items():
        if seconds >= params.min_contact_s:
            graph.add_edge(a, b, contact_s=seconds)
    return graph
