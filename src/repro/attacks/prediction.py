"""Next-location prediction using Mobility Markov Chains.

"[An MMC] can be used to predict his future locations" (Section VIII).
The evaluation protocol: split an individual's POI-visit sequence in two,
train the MMC on the prefix, then walk the suffix predicting each next
visit from the current one and measure top-1 accuracy (plus the
random-guess baseline, for context against the predictability literature
the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.mmc import visit_sequence
from repro.geo.trace import Trail, TraceArray

__all__ = ["PredictionReport", "evaluate_next_place_prediction"]


@dataclass
class PredictionReport:
    """Outcome of a next-place prediction evaluation."""

    n_predictions: int
    n_correct: int
    accuracy: float
    baseline_accuracy: float
    n_states: int

    @property
    def lift(self) -> float:
        """Accuracy relative to random guessing (1.0 = no better)."""
        if self.baseline_accuracy == 0:
            return float("inf") if self.accuracy > 0 else 1.0
        return self.accuracy / self.baseline_accuracy


def evaluate_next_place_prediction(
    trail: Trail | TraceArray,
    poi_coords: np.ndarray,
    train_fraction: float = 0.7,
    attach_radius_m: float = 200.0,
    smoothing: float = 0.1,
) -> PredictionReport:
    """Train/test evaluation of MMC next-place prediction on one trail.

    Returns a report with zero predictions when the visit sequence is too
    short to split (fewer than 3 visits).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    poi_coords = np.asarray(poi_coords, dtype=np.float64)
    array = trail.traces if isinstance(trail, Trail) else trail
    seq = visit_sequence(array, poi_coords, attach_radius_m)
    n_states = len(poi_coords)
    if len(seq) < 3 or n_states == 0:
        return PredictionReport(0, 0, 0.0, 0.0, n_states)
    split = max(2, int(len(seq) * train_fraction))
    train, test = seq[:split], seq[split - 1 :]  # overlap one visit as seed
    counts = np.full((n_states, n_states), float(smoothing))
    np.add.at(counts, (train[:-1], train[1:]), 1.0)
    transitions = counts / counts.sum(axis=1, keepdims=True)
    correct = 0
    total = 0
    for current, actual in zip(test[:-1], test[1:]):
        predicted = int(np.argmax(transitions[current]))
        correct += int(predicted == actual)
        total += 1
    accuracy = correct / total if total else 0.0
    baseline = 1.0 / n_states
    return PredictionReport(total, correct, accuracy, baseline, n_states)
