"""De-anonymization (linking) attacks via mobility fingerprints.

"The POIs of an individual and his movement patterns constitute a form of
fingerprinting: simply anonymizing or pseudonymizing the geolocated data
is clearly not a sufficient form of privacy protection against linking or
de-anonymization attacks" (Section II).

The attack: the adversary holds a *training* dataset with known
identities (auxiliary information), receives a pseudonymized *target*
dataset, fingerprints every trail in both (POIs + MMC) and links each
pseudonym to the training identity with the closest fingerprint.

Links are chosen by ``min((score, user_id))``: ties on the raw
fingerprint distance break deterministically toward the lexicographically
smallest training identity, so the result is independent of trail
iteration order and reproducible by a distributed reduce.  Candidates
with no spatial evidence (no POI pair within ``max_match_dist_m``; see
:func:`repro.attacks.mmc.mmc_link_score`) are skipped rather than scored
by their constant unmatched-mass penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.mmc import MobilityMarkovChain, build_mmc, mmc_link_score
from repro.attacks.poi import poi_attack
from repro.geo.trace import GeolocatedDataset, Trail

__all__ = ["fingerprint_user", "deanonymization_attack", "DeanonymizationResult"]


def fingerprint_user(
    trail: Trail,
    params: DJClusterParams | None = None,
    max_pois: int = 8,
    attach_radius_m: float = 200.0,
) -> MobilityMarkovChain | None:
    """Build one individual's mobility fingerprint (POIs + MMC).

    Returns ``None`` when no POIs can be extracted (trail too sparse),
    which the attack treats as "unlinkable".
    """
    if params is None:
        params = DJClusterParams()
    pois = poi_attack(trail, params)
    if not pois:
        return None
    top = pois[:max_pois]
    coords = np.array([p.coordinate for p in top])
    labels = [p.label for p in top]
    return build_mmc(trail, coords, attach_radius_m=attach_radius_m, labels=labels)


@dataclass
class DeanonymizationResult:
    """Outcome of a linking attack on a pseudonymized dataset."""

    #: pseudonym -> linked training identity (or None when unlinkable).
    linkage: dict[str, str | None]
    #: pseudonym -> true identity (the evaluation ground truth).
    ground_truth: dict[str, str]
    #: pseudonym -> fingerprint distance of the chosen link.
    scores: dict[str, float] = field(default_factory=dict)

    @property
    def n_targets(self) -> int:
        return len(self.ground_truth)

    @property
    def n_correct(self) -> int:
        return sum(
            1
            for pseud, truth in self.ground_truth.items()
            if self.linkage.get(pseud) == truth
        )

    @property
    def success_rate(self) -> float:
        """Fraction of pseudonyms re-identified correctly."""
        return self.n_correct / self.n_targets if self.n_targets else 0.0


def deanonymization_attack(
    training: GeolocatedDataset,
    target: GeolocatedDataset,
    ground_truth: dict[str, str],
    params: DJClusterParams | None = None,
    max_pois: int = 8,
    max_match_dist_m: float = 500.0,
) -> DeanonymizationResult:
    """Link each pseudonymized trail of ``target`` to a ``training`` user.

    ``ground_truth`` maps target pseudonyms to true training identities
    and is used only for scoring, never by the attack itself.  A
    pseudonym links to ``None`` when it has no fingerprint, the training
    set is empty, or no training fingerprint shares spatial evidence with
    it (every candidate's :func:`~repro.attacks.mmc.mmc_link_score` is
    ``None``).
    """
    if params is None:
        params = DJClusterParams()
    train_prints: dict[str, MobilityMarkovChain] = {}
    for trail in training.trails():
        fp = fingerprint_user(trail, params, max_pois)
        if fp is not None:
            train_prints[trail.user_id] = fp

    linkage: dict[str, str | None] = {}
    scores: dict[str, float] = {}
    for trail in target.trails():
        fp = fingerprint_user(trail, params, max_pois)
        if fp is None or not train_prints:
            linkage[trail.user_id] = None
            continue
        best: tuple[float, str] | None = None
        for user, train_fp in train_prints.items():
            score = mmc_link_score(fp, train_fp, max_match_dist_m=max_match_dist_m)
            if score is None:
                continue
            if best is None or (score, user) < best:
                best = (score, user)
        if best is None:
            linkage[trail.user_id] = None
        else:
            linkage[trail.user_id] = best[1]
            scores[trail.user_id] = best[0]
    return DeanonymizationResult(linkage, dict(ground_truth), scores)
