"""Mobility Markov Chains (the paper's first planned extension).

"A MMC represents in a compact way the mobility behavior of an individual
and can be used to predict his future locations or even to perform
de-anonymization attacks" (Section VIII).  States are the individual's
POIs; transitions count observed moves between consecutive POI visits.

The chain is built from a trail by snapping each trace to its nearest POI
(within an attachment radius), collapsing consecutive repeats into visits
and counting visit-to-visit transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.trace import Trail, TraceArray

__all__ = [
    "MobilityMarkovChain",
    "build_mmc",
    "mmc_distance",
    "mmc_link_score",
    "visit_sequence",
]


@dataclass
class MobilityMarkovChain:
    """A Markov chain over an individual's POIs.

    ``states`` is an (n, 2) array of POI coordinates; ``transitions`` is a
    row-stochastic (n, n) matrix (rows with no observations are uniform).
    """

    states: np.ndarray
    transitions: np.ndarray
    visit_counts: np.ndarray
    labels: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.states)
        if self.transitions.shape != (n, n):
            raise ValueError("transition matrix shape mismatch")
        if not np.allclose(self.transitions.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition matrix rows must sum to 1")
        if not self.labels:
            self.labels = [f"state_{i}" for i in range(n)]

    @property
    def n_states(self) -> int:
        return len(self.states)

    def predict_next(self, state: int) -> int:
        """Most likely next state from ``state``."""
        if not 0 <= state < self.n_states:
            raise IndexError(f"state {state} out of range")
        return int(np.argmax(self.transitions[state]))

    def next_distribution(self, state: int) -> np.ndarray:
        return self.transitions[state].copy()

    def stationary_distribution(self, tol: float = 1e-12, max_iter: int = 10_000) -> np.ndarray:
        """Long-run visit distribution via power iteration.

        Starts from the empirical visit frequencies so reducible chains
        converge to the component actually visited.
        """
        total = self.visit_counts.sum()
        pi = (
            self.visit_counts / total
            if total > 0
            else np.full(self.n_states, 1.0 / self.n_states)
        )
        for _ in range(max_iter):
            nxt = pi @ self.transitions
            if np.abs(nxt - pi).max() < tol:
                return nxt
            pi = nxt
        return pi

    def log_likelihood(self, sequence: np.ndarray) -> float:
        """Log2-likelihood of a visit sequence under this chain.

        The model-quality score for held-out evaluation: higher (less
        negative) means the chain explains the sequence better.  A
        transition with probability 0 yields ``-inf`` (use smoothing when
        building the chain to avoid it).
        """
        seq = np.asarray(sequence, dtype=np.int64)
        if len(seq) < 2:
            return 0.0
        if seq.min() < 0 or seq.max() >= self.n_states:
            raise IndexError("sequence contains out-of-range states")
        probs = self.transitions[seq[:-1], seq[1:]]
        with np.errstate(divide="ignore"):
            return float(np.sum(np.log2(probs)))

    def simulate(self, start: int, steps: int, seed: int = 0) -> np.ndarray:
        """Generate a synthetic visit sequence (for what-if analyses)."""
        rng = np.random.default_rng(seed)
        seq = np.empty(steps + 1, dtype=np.int64)
        seq[0] = start
        state = start
        for i in range(1, steps + 1):
            state = int(rng.choice(self.n_states, p=self.transitions[state]))
            seq[i] = state
        return seq


def visit_sequence(
    array: TraceArray, poi_coords: np.ndarray, attach_radius_m: float = 200.0
) -> np.ndarray:
    """Trail -> sequence of visited POI indices.

    Each trace snaps to its nearest POI if within ``attach_radius_m``
    (otherwise it is transit and ignored); consecutive repeats collapse
    into a single visit.
    """
    if len(poi_coords) == 0 or len(array) == 0:
        return np.empty(0, dtype=np.int64)
    ordered = array.sort_by_time()
    lat = ordered.latitude[:, None]
    lon = ordered.longitude[:, None]
    dists = haversine_m(lat, lon, poi_coords[None, :, 0], poi_coords[None, :, 1])
    nearest = np.argmin(dists, axis=1)
    within = dists[np.arange(len(nearest)), nearest] <= attach_radius_m
    attached = nearest[within]
    if len(attached) == 0:
        return np.empty(0, dtype=np.int64)
    change = np.ones(len(attached), dtype=bool)
    change[1:] = attached[1:] != attached[:-1]
    return attached[change]


def build_mmc(
    trail: Trail | TraceArray,
    poi_coords: np.ndarray,
    attach_radius_m: float = 200.0,
    labels: list[str] | None = None,
    smoothing: float = 0.0,
) -> MobilityMarkovChain:
    """Build an MMC over the given POIs from a trail.

    ``smoothing`` adds Laplace pseudo-counts to every transition, which
    keeps the chain irreducible for prediction tasks on sparse data.
    """
    poi_coords = np.asarray(poi_coords, dtype=np.float64)
    if poi_coords.ndim != 2 or poi_coords.shape[1] != 2:
        raise ValueError("poi_coords must be an (n, 2) array")
    if len(poi_coords) == 0:
        raise ValueError("an MMC needs at least one state")
    array = trail.traces if isinstance(trail, Trail) else trail
    seq = visit_sequence(array, poi_coords, attach_radius_m)
    n = len(poi_coords)
    counts = np.full((n, n), float(smoothing))
    if len(seq) >= 2:
        np.add.at(counts, (seq[:-1], seq[1:]), 1.0)
    visit_counts = np.bincount(seq, minlength=n).astype(np.float64)
    row_sums = counts.sum(axis=1, keepdims=True)
    transitions = np.where(row_sums > 0, counts / np.where(row_sums == 0, 1, row_sums), 1.0 / n)
    return MobilityMarkovChain(
        states=poi_coords.copy(),
        transitions=transitions,
        visit_counts=visit_counts,
        labels=list(labels) if labels else [],
    )


def _match_states(a: MobilityMarkovChain, b: MobilityMarkovChain, max_dist_m: float) -> list[tuple[int, int]]:
    """Greedy nearest-pair matching of two chains' POI sets."""
    if a.n_states == 0 or b.n_states == 0:
        return []
    d = haversine_m(
        a.states[:, None, 0], a.states[:, None, 1],
        b.states[None, :, 0], b.states[None, :, 1],
    )
    d = np.atleast_2d(d)
    pairs: list[tuple[int, int]] = []
    used_a: set[int] = set()
    used_b: set[int] = set()
    order = np.argsort(d, axis=None)
    for flat in order:
        i, j = np.unravel_index(flat, d.shape)
        if d[i, j] > max_dist_m:
            break
        if i in used_a or j in used_b:
            continue
        pairs.append((int(i), int(j)))
        used_a.add(int(i))
        used_b.add(int(j))
    return pairs


def mmc_distance(
    a: MobilityMarkovChain,
    b: MobilityMarkovChain,
    max_match_dist_m: float = 500.0,
    unmatched_penalty: float = 1.0,
) -> float:
    """Dissimilarity between two mobility fingerprints (lower = closer).

    States are matched greedily by spatial proximity; matched states
    contribute the absolute difference of their stationary probabilities
    plus the L1 gap between their outgoing transition rows (restricted to
    matched columns); unmatched stationary mass pays ``unmatched_penalty``.
    This is the linking-attack scoring function.
    """
    return _pair_score(a, b, _match_states(a, b, max_match_dist_m), unmatched_penalty)


def mmc_link_score(
    a: MobilityMarkovChain,
    b: MobilityMarkovChain,
    max_match_dist_m: float = 500.0,
    unmatched_penalty: float = 1.0,
) -> "float | None":
    """Linking score, or ``None`` when the chains share no nearby POIs.

    When no POI of ``a`` lies within ``max_match_dist_m`` of any POI of
    ``b`` the chains carry *no spatial evidence* about each other; the
    value :func:`mmc_distance` returns in that regime is the pure
    unmatched-mass penalty — a constant independent of which candidate is
    being scored, so "best by penalty" degenerates to whichever candidate
    is enumerated first.  Returning ``None`` lets callers skip such pairs
    outright, which is also what makes spatial candidate blocking exact:
    every pair with a non-``None`` score has at least one POI pair within
    ``max_match_dist_m``, hence shares a blocking cell.
    """
    pairs = _match_states(a, b, max_match_dist_m)
    if not pairs:
        return None
    return _pair_score(a, b, pairs, unmatched_penalty)


def _pair_score(
    a: MobilityMarkovChain,
    b: MobilityMarkovChain,
    pairs: list[tuple[int, int]],
    unmatched_penalty: float,
) -> float:
    pi_a = a.stationary_distribution()
    pi_b = b.stationary_distribution()
    matched_a = {i for i, _ in pairs}
    matched_b = {j for _, j in pairs}
    score = 0.0
    for i, j in pairs:
        score += abs(pi_a[i] - pi_b[j])
        # Compare transition rows over the common matched state space.
        for i2, j2 in pairs:
            score += abs(a.transitions[i, i2] - b.transitions[j, j2]) * pi_a[i]
    score += unmatched_penalty * float(
        sum(pi_a[i] for i in range(a.n_states) if i not in matched_a)
        + sum(pi_b[j] for j in range(b.n_states) if j not in matched_b)
    )
    return float(score)
