"""Semantic trajectories: labelling what places *mean* (Section II).

"Some mobility models such as semantic trajectories do not only
represent the evolution of the movements of an individual over time, but
they also attach a semantic label to the visited places.  From this
semantic information the adversary can derive a clearer understanding
about the interests of an individual."

Given a user's stays (:func:`repro.geo.trajectory.segment_trail`)
clustered into places, this module labels each place from its visit-time
signature — when, how long, how regularly the user is there:

* ``home`` — dominant presence in night hours;
* ``work`` — weekday working-hours presence with long dwells;
* ``lunch`` — short midday weekday visits;
* ``leisure`` — evening / weekend visits;
* ``errand`` — short, irregular daytime visits (the fallback).

The output is the *semantic trail*: the time-ordered sequence of
labelled visits, a far more invasive artifact than raw coordinates.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.trajectory import Stay, segment_trail
from repro.geo.trace import Trail, TraceArray

__all__ = ["SemanticPlace", "SemanticVisit", "label_places", "semantic_trail"]


@dataclass
class SemanticPlace:
    """A recurrent place with an inferred semantic label."""

    latitude: float
    longitude: float
    label: str
    n_visits: int
    total_dwell_s: float
    night_fraction: float
    workhour_fraction: float
    weekend_fraction: float
    #: Fraction of observed days whose first or last visit is here — the
    #: strongest home signal when loggers are off overnight.
    day_endpoint_fraction: float = 0.0


@dataclass(frozen=True)
class SemanticVisit:
    """One labelled visit of the semantic trail."""

    place_index: int
    label: str
    start_ts: float
    duration_s: float


def _hour_and_weekday(ts: float) -> tuple[int, int]:
    when = _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)
    return when.hour, when.weekday()


def _group_stays(stays: list[Stay], merge_radius_m: float) -> list[list[int]]:
    """Greedy spatial grouping of stays into places."""
    groups: list[list[int]] = []
    centers: list[tuple[float, float]] = []
    for i, stay in enumerate(stays):
        placed = False
        for g, (clat, clon) in enumerate(centers):
            if float(haversine_m(stay.latitude, stay.longitude, clat, clon)) <= merge_radius_m:
                groups[g].append(i)
                members = [stays[j] for j in groups[g]]
                centers[g] = (
                    float(np.mean([s.latitude for s in members])),
                    float(np.mean([s.longitude for s in members])),
                )
                placed = True
                break
        if not placed:
            groups.append([i])
            centers.append((stay.latitude, stay.longitude))
    return groups


def _classify(place: SemanticPlace) -> str:
    """Rule-based labelling from the visit-time signature.

    Home is decided *before* this runs (night mass or day-endpoint
    dominance, see :func:`label_places`); these rules sort the rest.
    """
    mean_dwell = place.total_dwell_s / max(place.n_visits, 1)
    if place.workhour_fraction > 0.5 and place.weekend_fraction < 0.4 and mean_dwell > 3600:
        return "work"
    if place.workhour_fraction > 0.5 and mean_dwell <= 3600:
        return "lunch"
    if place.weekend_fraction > 0.4 or place.night_fraction > 0.05:
        return "leisure"
    return "errand"


def label_places(
    trail: Trail | TraceArray,
    roam_radius_m: float = 100.0,
    min_stay_s: float = 600.0,
    merge_radius_m: float = 150.0,
) -> tuple[list[SemanticPlace], list[SemanticVisit]]:
    """Segment, group and label a trail's places.

    Returns the labelled places and the semantic trail (time-ordered
    visits referencing them).  Night hours are 22:00–06:00, working
    hours 09:00–18:00 UTC; adjust timestamps beforehand for local time.
    """
    stays, _trips = segment_trail(trail, roam_radius_m, min_stay_s)
    if not stays:
        return [], []
    groups = _group_stays(stays, merge_radius_m)
    stay_to_place: dict[int, int] = {
        i: g for g, members in enumerate(groups) for i in members
    }
    # Day endpoints: per observed day, which place opens and closes it.
    by_day: dict[int, list[int]] = {}
    for i, stay in enumerate(stays):
        by_day.setdefault(int(stay.start_ts // 86400.0), []).append(i)
    endpoint_counts = np.zeros(len(groups))
    for day_stays in by_day.values():
        ordered = sorted(day_stays, key=lambda i: stays[i].start_ts)
        endpoint_counts[stay_to_place[ordered[0]]] += 1
        endpoint_counts[stay_to_place[ordered[-1]]] += 1
    n_days = max(len(by_day), 1)

    places: list[SemanticPlace] = []
    for g, members in enumerate(groups):
        night = work = weekend = 0
        dwell = 0.0
        for i in members:
            stay = stays[i]
            hour, weekday = _hour_and_weekday(stay.start_ts)
            night += int(hour >= 22 or hour < 6)
            work += int(9 <= hour < 18)
            weekend += int(weekday >= 5)
            dwell += stay.duration_s
        lat = float(np.mean([stays[i].latitude for i in members]))
        lon = float(np.mean([stays[i].longitude for i in members]))
        places.append(
            SemanticPlace(
                latitude=lat,
                longitude=lon,
                label="",
                n_visits=len(members),
                total_dwell_s=dwell,
                night_fraction=night / len(members),
                workhour_fraction=work / len(members),
                weekend_fraction=weekend / len(members),
                day_endpoint_fraction=float(endpoint_counts[g]) / (2 * n_days),
            )
        )
    # Home first: the place that anchors the user's days — most night
    # mass, or (when loggers sleep overnight) most day endpoints.
    home_scores = [
        p.night_fraction * 2.0 + p.day_endpoint_fraction for p in places
    ]
    best = int(np.argmax(home_scores))
    if home_scores[best] > 0.3:
        places[best].label = "home"
    for p in places:
        if not p.label:
            p.label = _classify(p)
    # At most one work: keep the strongest, demote the rest.
    tagged = [p for p in places if p.label == "work"]
    if len(tagged) > 1:
        keep = max(tagged, key=lambda p: p.workhour_fraction * p.total_dwell_s)
        for p in tagged:
            if p is not keep:
                p.label = "errand"
    visits = [
        SemanticVisit(
            place_index=stay_to_place[i],
            label=places[stay_to_place[i]].label,
            start_ts=stay.start_ts,
            duration_s=stay.duration_s,
        )
        for i, stay in enumerate(stays)
    ]
    visits.sort(key=lambda v: v.start_ts)
    return places, visits


def semantic_trail(
    trail: Trail | TraceArray, **kwargs
) -> list[str]:
    """The trail as a sequence of semantic labels (the privacy payload)."""
    _places, visits = label_places(trail, **kwargs)
    return [v.label for v in visits]
