"""MapReduce-parallel de-anonymization: the linking attack at scale.

The serial :func:`repro.attacks.deanonymization.deanonymization_attack`
scores every pseudonym against every training identity — an
O(targets × trainings) loop that caps the paper's central question
("does pseudonymization survive a motivated adversary?") at a few
thousand users.  This module runs the same attack as first-class
MapReduce jobs:

* **fingerprint jobs** (one per side) — mappers slice each chunk's rows
  per user and ship raw *trail fragments*; reducers stitch a user's
  fragments in file order and run the unchanged serial
  :func:`~repro.attacks.deanonymization.fingerprint_user` (DJ-Cluster
  POIs + MMC).  Shipping raw rows matters: preprocessing is not
  idempotent (the speed filter and dedup compare original neighbours),
  so fingerprinting anything but the original per-user rows would break
  bit-equality with the serial reference.
* **linkage job** — the shuffle is keyed by *candidate-blocking cell*:
  a geographic grid of width ``2 × max_match_dist_m``.  Target
  fingerprints go to the cells containing their POIs; training
  fingerprints go to every cell of a conservatively-rounded
  ``max_match_dist_m`` box around each POI.  Two fingerprints that share
  no cell cannot have a POI pair within ``max_match_dist_m``, hence
  (post tie-break fix) cannot link — so reducers score only plausible
  pairs instead of the full cross product.  Each reducer emits its
  per-pseudonym best link; the driver folds reducer outputs with the
  same deterministic ``min((score, user_id))`` the serial attack uses.

A pair sharing several cells is scored exactly once: both sides carry
their sorted cell lists, and only the lexicographically smallest shared
cell ("owner") scores the pair.

**Exactness audit.** The training POI table is also published through the
shared persistent R-tree :class:`~repro.index.persistent.IndexCatalog`;
target mappers radius-query the portable index to count, independently
of the grid, the exact number of (pseudonym × training) pairs with any
POI pair within ``max_match_dist_m``.  Because a pair is scored iff it
has such a POI pair (see :func:`~repro.attacks.mmc.mmc_link_score`),
``candidate_pairs_scored == candidate_pairs_exact`` proves the blocking
grid dropped nothing; the bench and the property suite gate on it.

Input contract: each side is a trace-array file whose per-user row order
equals the trail's time order (any time-sorted layout qualifies —
user-major files and globally time-sorted flats both do).

``runner`` is anything runner-shaped: a
:class:`~repro.mapreduce.runner.JobRunner` or a
:class:`~repro.mapreduce.service.TenantClient` (the sweep harness runs
one attack per tenant through a shared service).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.deanonymization import DeanonymizationResult, fingerprint_user
from repro.attacks.mmc import MobilityMarkovChain, mmc_link_score
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.types import ArrayPayload, Chunk, concrete_payload
from repro.observability.events import EventKind

__all__ = [
    "LinkageAttackResult",
    "run_linkage_attack",
    "run_attack_selfcheck",
    "linkage_signature",
    "split_linkage_corpus",
    "synthetic_linkage_corpus",
    "blocking_cell",
    "cover_cells",
    "TrailFragmentMapper",
    "FingerprintReducer",
    "BlockingMapper",
    "LinkageScoreReducer",
    "PARAMS_CACHE_KEY",
    "INDEX_CACHE_KEY",
    "GROUP_LINKAGE",
    "COUNTER_PAIRS_SCORED",
    "COUNTER_PAIRS_EXACT",
]

#: Distributed-cache key for (params, max_pois, attach_radius_m).
PARAMS_CACHE_KEY = "linkage.params"
#: Distributed-cache key for (portable POI index, per-row owner users).
INDEX_CACHE_KEY = "linkage.train_poi_index"

GROUP_LINKAGE = "linkage"
#: Pairs actually scored by reducers (owner-cell deduplicated).
COUNTER_PAIRS_SCORED = "candidate_pairs_scored"
#: Pairs with spatial evidence per the persistent-index ground truth.
COUNTER_PAIRS_EXACT = "candidate_pairs_exact"

# Conservative metres per degree of latitude: a deliberate UNDERestimate
# (true value ≈ 110,574 m), so degree spans derived from it OVERestimate
# — cells can only get extra members, never lose one.
_M_PER_DEG = 110_000.0
#: Radius the repo's haversine uses, in metres (EARTH_RADIUS_KM * 1000).
_R_M = 6_371_008.8
#: Beyond this latitude everything shares one per-hemisphere cell; the
#: band geometry degenerates near the poles and mobility data there is
#: noise anyway.
_POLAR_LAT = 85.0
_POLAR_BAND = 1 << 40


# ---------------------------------------------------------------------------
# Candidate-blocking geometry
# ---------------------------------------------------------------------------

def _lat_width_deg(max_match_dist_m: float) -> float:
    return 2.0 * max_match_dist_m / _M_PER_DEG


def _lon_width_deg(band: int, w_lat: float, max_match_dist_m: float) -> float:
    cos_c = max(math.cos(math.radians((band + 0.5) * w_lat)), 1e-9)
    return 2.0 * max_match_dist_m / (_M_PER_DEG * cos_c)


def blocking_cell(lat: float, lon: float, max_match_dist_m: float) -> tuple[int, int]:
    """The grid cell containing one POI (a hashable, sortable int pair)."""
    if abs(lat) > _POLAR_LAT:
        return (_POLAR_BAND, 1 if lat > 0 else -1)
    w_lat = _lat_width_deg(max_match_dist_m)
    band = math.floor(lat / w_lat)
    return (band, math.floor(lon / _lon_width_deg(band, w_lat, max_match_dist_m)))


def cover_cells(lat: float, lon: float, max_match_dist_m: float) -> set[tuple[int, int]]:
    """Every cell that could contain a point within ``max_match_dist_m``.

    The cover is conservative (it may include cells no reachable point
    maps to) but never lossy: for any point ``p`` with
    ``haversine(p, (lat, lon)) <= max_match_dist_m``,
    ``blocking_cell(p) ∈ cover_cells((lat, lon))``.  The latitude span
    uses the exact haversine bound ``Δφ ≤ d/R``; the longitude span uses
    ``sin(Δλ/2) ≤ sin(d/2R)/cos(φ_edge)`` with the cosine taken at the
    most poleward latitude the box reaches.  Boxes crossing the
    antimeridian also cover their wrapped image.
    """
    d = max_match_dist_m
    cells: set[tuple[int, int]] = set()
    dlat = math.degrees(d / _R_M)
    lat_lo, lat_hi = lat - dlat, lat + dlat
    if lat_hi > _POLAR_LAT:
        cells.add((_POLAR_BAND, 1))
    if lat_lo < -_POLAR_LAT:
        cells.add((_POLAR_BAND, -1))
    lo = max(lat_lo, -_POLAR_LAT)
    hi = min(lat_hi, _POLAR_LAT)
    if lo > hi:
        return cells
    edge = min(max(abs(lat_lo), abs(lat_hi)), 89.9)
    sin_half = math.sin(d / (2.0 * _R_M)) / max(math.cos(math.radians(edge)), 1e-9)
    dlon = math.degrees(2.0 * math.asin(min(1.0, sin_half)))
    w_lat = _lat_width_deg(d)
    for band in range(math.floor(lo / w_lat), math.floor(hi / w_lat) + 1):
        w_lon = _lon_width_deg(band, w_lat, d)
        spans = [(lon - dlon, lon + dlon)]
        if lon - dlon < -180.0:
            spans.append((lon - dlon + 360.0, 180.0))
        if lon + dlon > 180.0:
            spans.append((-180.0, lon + dlon - 360.0))
        for span_lo, span_hi in spans:
            for j in range(math.floor(span_lo / w_lon), math.floor(span_hi / w_lon) + 1):
                cells.add((band, j))
    return cells


def _own_cells(fp: MobilityMarkovChain, max_match_dist_m: float) -> set[tuple[int, int]]:
    return {
        blocking_cell(float(s[0]), float(s[1]), max_match_dist_m) for s in fp.states
    }


def _cover_of(fp: MobilityMarkovChain, max_match_dist_m: float) -> set[tuple[int, int]]:
    cells: set[tuple[int, int]] = set()
    for s in fp.states:
        cells |= cover_cells(float(s[0]), float(s[1]), max_match_dist_m)
    return cells


# ---------------------------------------------------------------------------
# Stage 1 — fingerprint jobs
# ---------------------------------------------------------------------------

class TrailFragmentMapper(Mapper):
    """Ship each chunk's rows as per-user raw trail fragments.

    One stable argsort per chunk; within a user the original row order is
    preserved (stable sort), so reducers can reconstruct the exact trail
    by concatenating fragments in chunk-offset order.
    """

    def run(self, chunk: Chunk, ctx) -> None:
        payload = concrete_payload(chunk.payload)
        if not isinstance(payload, ArrayPayload):
            raise TypeError("fingerprint jobs read trace-array files")
        array = payload.array
        if len(array) == 0:
            return
        users = array.user_index
        order = np.argsort(users, kind="stable")
        sorted_users = users[order]
        boundaries = np.nonzero(
            np.concatenate(([True], sorted_users[1:] != sorted_users[:-1]))
        )[0]
        ends = np.concatenate((boundaries[1:], [len(order)]))
        for start, end in zip(boundaries.tolist(), ends.tolist()):
            rows = order[start:end]
            lat = array.latitude[rows]
            ctx.emit(
                array.users[int(sorted_users[start])],
                (
                    int(payload.offset),
                    lat,
                    array.longitude[rows],
                    array.timestamp[rows],
                ),
                nbytes=int(lat.nbytes * 3 + 8),
                n_records=int(len(rows)),
            )


class FingerprintReducer(Reducer):
    """Stitch a user's fragments and run the serial fingerprint on them."""

    def setup(self, ctx) -> None:
        self._params, self._max_pois, self._attach_radius_m = ctx.cache.get(
            PARAMS_CACHE_KEY
        )
        self._role = ctx.conf.get_str("linkage.role")

    def reduce(self, key, values, ctx) -> None:
        fragments = sorted(values, key=lambda fragment: fragment[0])
        lat = np.concatenate([f[1] for f in fragments])
        lon = np.concatenate([f[2] for f in fragments])
        ts = np.concatenate([f[3] for f in fragments])
        trail = Trail(str(key), TraceArray.from_columns(str(key), lat, lon, ts))
        fp = fingerprint_user(
            trail, self._params, self._max_pois, attach_radius_m=self._attach_radius_m
        )
        nbytes = 16
        if fp is not None:
            nbytes = int(fp.states.nbytes + fp.transitions.nbytes + fp.visit_counts.nbytes + 32)
        # None fingerprints ride along: the driver needs the full target
        # roster to report unlinkable pseudonyms, exactly like the serial
        # attack does.
        ctx.emit(key, (self._role, fp), nbytes=nbytes)


# ---------------------------------------------------------------------------
# Stage 2 — blocking shuffle + scoring reduce
# ---------------------------------------------------------------------------

class BlockingMapper(Mapper):
    """Route fingerprints to candidate-blocking cells.

    Training fingerprints are replicated to every cell of their POIs'
    conservative boxes; target fingerprints go only to the cells
    containing their own POIs.  When the persistent-index audit is on,
    target POIs are also batch-queried against the portable R-tree over
    the training POI table to count exact candidate pairs.
    """

    def setup(self, ctx) -> None:
        self._d = ctx.conf.get_float("linkage.max_match_dist_m")
        self._audit = bool(ctx.conf.get_int("linkage.audit", 0))
        if self._audit:
            self._index, self._owners = ctx.cache.get(INDEX_CACHE_KEY)

    def run(self, chunk: Chunk, ctx) -> None:
        audit_points: list[np.ndarray] = []
        audit_slices: list[int] = []
        for user, (role, fp) in chunk.records():
            if fp is None:
                continue
            if role == "train":
                cover = _cover_of(fp, self._d)
                cells = tuple(sorted(cover))
                value = (0, str(user), fp, cells)
                for cell in cover:
                    ctx.emit(cell, value, nbytes=len(cells) * 16 + 64)
            else:
                own = _own_cells(fp, self._d)
                cells = tuple(sorted(own))
                value = (1, str(user), fp, cells)
                for cell in own:
                    ctx.emit(cell, value, nbytes=len(cells) * 16 + 64)
                if self._audit:
                    audit_points.append(np.asarray(fp.states, dtype=np.float64))
                    audit_slices.append(len(fp.states))
        if self._audit and audit_points:
            points = np.concatenate(audit_points, axis=0)
            hits = self._index.query_radius_batch(points, self._d)
            at = 0
            pairs = 0
            for n_states in audit_slices:
                ids = [hit for hit in hits[at : at + n_states] if len(hit)]
                at += n_states
                if not ids:
                    continue
                rows = np.unique(np.concatenate(ids))
                pairs += len(np.unique(self._owners[rows]))
            if pairs:
                ctx.counters.increment(GROUP_LINKAGE, COUNTER_PAIRS_EXACT, pairs)


class LinkageScoreReducer(Reducer):
    """Score each plausible pair once and emit per-pseudonym cell bests.

    A pair may co-occur in several cells; only its *owner* cell — the
    smallest cell both sides share — scores it, so the scored-pairs
    counter is an exact pair count and no work is duplicated.
    """

    def setup(self, ctx) -> None:
        self._d = ctx.conf.get_float("linkage.max_match_dist_m")

    def reduce(self, key, values, ctx) -> None:
        trains: list[tuple[str, MobilityMarkovChain, frozenset]] = []
        targets: list[tuple[str, MobilityMarkovChain, frozenset]] = []
        for role, user, fp, cells in values:
            (targets if role else trains).append((user, fp, frozenset(cells)))
        scored = 0
        for pseud, target_fp, target_cells in targets:
            best: tuple[float, str] | None = None
            for user, train_fp, train_cells in trains:
                if min(target_cells & train_cells) != key:
                    continue
                score = mmc_link_score(
                    target_fp, train_fp, max_match_dist_m=self._d
                )
                if score is None:
                    continue
                scored += 1
                if best is None or (score, user) < best:
                    best = (score, user)
            if best is not None:
                ctx.emit(pseud, best, nbytes=24)
        if scored:
            ctx.counters.increment(GROUP_LINKAGE, COUNTER_PAIRS_SCORED, scored)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def linkage_signature(result: DeanonymizationResult) -> str:
    """Canonical byte fingerprint of a linkage outcome.

    Order-insensitive over pseudonyms (sorted), exact over scores
    (``float.hex``) — equal signatures mean byte-identical attacks.
    """
    h = hashlib.sha256()
    for pseud in sorted(result.linkage):
        link = result.linkage[pseud]
        score = result.scores.get(pseud)
        h.update(
            "\t".join(
                (
                    pseud,
                    link if link is not None else "-",
                    score.hex() if score is not None else "-",
                )
            ).encode()
        )
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class LinkageAttackResult:
    """Outcome and audit trail of one MapReduce linkage attack."""

    result: DeanonymizationResult
    n_train_fingerprints: int
    n_target_fingerprints: int
    #: pairs scored by the blocking reduce (owner-cell deduplicated).
    pairs_scored: int
    #: exact candidate pairs per the persistent index (None = audit off).
    pairs_exact: "int | None"
    #: what the serial attack would have scored.
    cross_product: int
    sim_seconds: float

    @property
    def blocking_exact(self) -> "bool | None":
        """Did the grid provably score every pair with spatial evidence?"""
        if self.pairs_exact is None:
            return None
        return self.pairs_scored == self.pairs_exact

    def signature(self) -> str:
        return linkage_signature(self.result)


def run_linkage_attack(
    runner,
    training_path: str,
    target_path: str,
    ground_truth: "dict[str, str] | None" = None,
    params: DJClusterParams | None = None,
    max_pois: int = 8,
    attach_radius_m: float = 200.0,
    max_match_dist_m: float = 500.0,
    num_reducers: "int | None" = None,
    workdir: str = "tmp/linkage",
    use_persistent_index: bool = True,
    history_path: "str | None" = None,
) -> LinkageAttackResult:
    """Run the full linking attack as MapReduce jobs.

    ``training_path`` and ``target_path`` are trace-array files (see the
    module docstring for the row-order contract).  ``ground_truth`` maps
    pseudonyms to true identities and is used only for scoring.  Output
    equals the serial
    :func:`~repro.attacks.deanonymization.deanonymization_attack` on the
    same data, byte for byte, on every backend and chunking.

    ``use_persistent_index=True`` publishes the training POI table
    through the shared :class:`~repro.index.persistent.IndexCatalog` and
    runs the exact candidate-pair audit (see module docstring); the
    audit never changes the attack's output, only
    ``pairs_exact``/``blocking_exact``.
    """
    if params is None:
        params = DJClusterParams()
    hdfs = runner.hdfs
    t0 = runner.history.clock
    fps_train = f"{workdir}/fingerprints-train"
    fps_target = f"{workdir}/fingerprints-target"
    poi_path = f"{workdir}/train-pois"
    links_path = f"{workdir}/links"

    runner.cache.replace(PARAMS_CACHE_KEY, (params, max_pois, attach_radius_m))
    reducers = num_reducers or min(8, runner.cluster.total_reduce_slots())
    for role, in_path, out_path in (
        ("train", training_path, fps_train),
        ("target", target_path, fps_target),
    ):
        hdfs.delete(out_path, missing_ok=True)
        runner.run(
            JobSpec(
                name=f"linkage-fingerprint-{role}",
                mapper=TrailFragmentMapper,
                reducer=FingerprintReducer,
                input_paths=[in_path],
                output_path=out_path,
                conf=Configuration({"linkage.role": role}),
                num_reducers=reducers,
                reduce_cost_factor=3.0,  # DJ-Cluster + MMC per user
            )
        )

    train_fps = [
        (str(user), fp)
        for user, (_role, fp) in hdfs.read_records(fps_train)
        if fp is not None
    ]
    roster: list[str] = []
    n_target_fps = 0
    for user, (_role, fp) in hdfs.read_records(fps_target):
        roster.append(str(user))
        if fp is not None:
            n_target_fps += 1

    audit = use_persistent_index and bool(train_fps) and n_target_fps > 0
    if audit:
        owners: list[str] = []
        lats: list[float] = []
        lons: list[float] = []
        ranks: list[float] = []
        for user, fp in train_fps:
            for rank, state in enumerate(fp.states):
                owners.append(user)
                lats.append(float(state[0]))
                lons.append(float(state[1]))
                ranks.append(float(rank))
        hdfs.delete(poi_path, missing_ok=True)
        hdfs.put_trace_array(
            poi_path,
            TraceArray.from_columns(
                owners,
                np.asarray(lats),
                np.asarray(lons),
                np.asarray(ranks),
            ),
        )
        from repro.index.persistent import IndexCatalog

        index, _built = IndexCatalog(hdfs).ensure(runner, poi_path)
        runner.cache.replace(
            INDEX_CACHE_KEY,
            (index.to_portable(), np.asarray(owners, dtype=object)),
        )

    pairs_scored = 0
    pairs_exact: "int | None" = None
    best: dict[str, tuple[float, str]] = {}
    if train_fps and n_target_fps:
        hdfs.delete(links_path, missing_ok=True)
        link_result = runner.run(
            JobSpec(
                name="linkage-score",
                mapper=BlockingMapper,
                reducer=LinkageScoreReducer,
                input_paths=[fps_train, fps_target],
                output_path=links_path,
                conf=Configuration(
                    {
                        "linkage.max_match_dist_m": max_match_dist_m,
                        "linkage.audit": 1 if audit else 0,
                    }
                ),
                num_reducers=reducers,
                map_cost_factor=1.2,
                reduce_cost_factor=2.0,
            )
        )
        pairs_scored = link_result.counters.value(GROUP_LINKAGE, COUNTER_PAIRS_SCORED)
        if audit:
            pairs_exact = link_result.counters.value(
                GROUP_LINKAGE, COUNTER_PAIRS_EXACT
            )
        for pseud, (score, user) in hdfs.read_records(links_path):
            cand = (float(score), str(user))
            cur = best.get(str(pseud))
            if cur is None or cand < cur:
                best[str(pseud)] = cand

    linkage: dict[str, "str | None"] = {}
    scores: dict[str, float] = {}
    for pseud in roster:
        winner = best.get(pseud)
        if winner is None:
            linkage[pseud] = None
        else:
            linkage[pseud] = winner[1]
            scores[pseud] = winner[0]

    outcome = LinkageAttackResult(
        result=DeanonymizationResult(linkage, dict(ground_truth or {}), scores),
        n_train_fingerprints=len(train_fps),
        n_target_fingerprints=n_target_fps,
        pairs_scored=int(pairs_scored),
        pairs_exact=int(pairs_exact) if pairs_exact is not None else None,
        cross_product=len(train_fps) * n_target_fps,
        sim_seconds=float(runner.history.clock - t0),
    )
    data = {
        "driver": "linkage-attack",
        "n_train_fingerprints": outcome.n_train_fingerprints,
        "n_target_fingerprints": outcome.n_target_fingerprints,
        "linked": sum(1 for v in linkage.values() if v is not None),
        "success_rate": outcome.result.success_rate,
        "pairs_scored": outcome.pairs_scored,
        "cross_product": outcome.cross_product,
        "signature": outcome.signature(),
    }
    if pairs_exact is not None:
        data["pairs_exact"] = outcome.pairs_exact
    runner.history.emit(
        EventKind.ATTACK_RESULT, "linkage-score", runner.history.clock, **data
    )
    if history_path is not None:
        runner.history.save(history_path)
    return outcome


# ---------------------------------------------------------------------------
# Corpus helpers (chaos driver, selfcheck, bench)
# ---------------------------------------------------------------------------

def split_linkage_corpus(
    array: TraceArray, pseudonym_prefix: str = "anon-"
) -> tuple[TraceArray, TraceArray, dict[str, str]]:
    """Split a corpus in time into (training, pseudonymized target, truth).

    Rows before the time midpoint become the adversary's training data
    (identities intact); rows after become the attacked release, with
    every user renamed ``pseudonym_prefix + user``.
    """
    if len(array) == 0:
        return array, array, {}
    ts = array.timestamp
    cut = (float(ts.min()) + float(ts.max())) / 2.0
    train = array[np.nonzero(ts < cut)[0]]
    released = array[np.nonzero(ts >= cut)[0]]
    renamed = [pseudonym_prefix + u for u in released.user_ids()]
    target = TraceArray.from_columns(
        renamed if renamed else [pseudonym_prefix],
        released.latitude,
        released.longitude,
        released.timestamp,
        released.altitude,
    )
    truth = {
        pseudonym_prefix + u: u for u in sorted(set(released.user_ids().tolist()))
    }
    return train, target, truth


#: DJ-Cluster parameters matched to :func:`synthetic_linkage_corpus`
#: (its POI visits leave ~3 surviving points per visit after the speed
#: filter, so the default min_pts would discard everything).
SYNTH_ATTACK_PARAMS = DJClusterParams(radius_m=150.0, min_pts=3)


def synthetic_linkage_corpus(
    n_users: int,
    seed: int = 0,
    pois_per_user: int = 2,
    visits: int = 6,
    points_per_visit: int = 5,
    jitter_deg: float = 4e-5,
    region: tuple[tuple[float, float], tuple[float, float]] = ((25.0, 55.0), (-120.0, 120.0)),
) -> tuple[TraceArray, TraceArray, dict[str, str]]:
    """A fully vectorized linkage workload: (training, target, truth).

    Each user commutes between ``pois_per_user`` personal POIs scattered
    a few km around a per-user anchor; anchors are spread over a wide
    ``region`` so blocking cells stay sparse at 10^5 users.  The target
    release re-observes the same POIs ten days later with independent
    jitter and pseudonymized ids — so the true link survives sanitized
    observation noise, which is exactly the paper's threat model.  Use
    :data:`SYNTH_ATTACK_PARAMS` when attacking this corpus.
    """
    (lat_lo, lat_hi), (lon_lo, lon_hi) = region
    rng = np.random.default_rng(seed)
    anchor_lat = rng.uniform(lat_lo, lat_hi, n_users)
    anchor_lon = rng.uniform(lon_lo, lon_hi, n_users)
    poi_lat = anchor_lat[:, None] + rng.uniform(-0.03, 0.03, (n_users, pois_per_user))
    poi_lon = anchor_lon[:, None] + rng.uniform(-0.03, 0.03, (n_users, pois_per_user))
    visit_poi = np.arange(visits) % pois_per_user
    base_lat = np.repeat(poi_lat[:, visit_poi][:, :, None], points_per_visit, axis=2)
    base_lon = np.repeat(poi_lon[:, visit_poi][:, :, None], points_per_visit, axis=2)
    stamps = (
        np.arange(visits)[:, None] * 4 * 3600.0
        + np.arange(points_per_visit)[None, :] * 60.0
    )
    shape = (n_users, visits, points_per_visit)
    user_names = [f"u{i:06d}" for i in range(n_users)]
    rows_per_user = visits * points_per_visit

    def side(side_rng, names, t_offset):
        lat = base_lat + side_rng.uniform(-jitter_deg, jitter_deg, shape)
        lon = base_lon + side_rng.uniform(-jitter_deg, jitter_deg, shape)
        ts = np.broadcast_to(stamps + t_offset, shape)
        row_users = np.repeat(np.asarray(names, dtype=object), rows_per_user)
        return TraceArray.from_columns(
            row_users, lat.ravel(), lon.ravel(), np.ascontiguousarray(ts).ravel()
        )

    training = side(rng, user_names, 0.0)
    pseudonyms = [f"anon-{i:06d}" for i in range(n_users)]
    target = side(
        np.random.default_rng(seed + 1), pseudonyms, 10 * 86_400.0
    )
    truth = dict(zip(pseudonyms, user_names))
    return training, target, truth


def run_attack_selfcheck(n_users: int = 8, seed: int = 11, verbose: bool = True) -> bool:
    """Small end-to-end check: MR attack ≡ serial attack, every backend.

    Runs the fixed serial reference on a synthetic corpus, then the MR
    attack on all three backends plus a memory-budgeted deployment, and
    checks byte-identical signatures and the blocking-exactness audit.
    Returns True when everything matches (``repro attack --linkage
    --selfcheck`` exits non-zero otherwise).
    """
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.config import BACKENDS
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.runner import JobRunner

    training, target, truth = synthetic_linkage_corpus(n_users, seed=seed)
    serial = deanonymization_attack_reference(
        training, target, truth, params=SYNTH_ATTACK_PARAMS
    )
    reference = linkage_signature(serial)
    lines = [
        f"attack selfcheck: {n_users} users, serial reference "
        f"success={serial.success_rate:.2f} signature={reference[:12]}…"
    ]
    ok = True
    cells = [(backend, None) for backend in BACKENDS] + [("serial", 8.0)]
    for backend, budget in cells:
        hdfs = SimulatedHDFS(
            paper_cluster(3), chunk_size=16 * 1024, seed=0, memory_budget_mb=budget
        )
        hdfs.put_trace_array("input/train", training, record_bytes=64)
        hdfs.put_trace_array("input/target", target, record_bytes=64)
        runner = JobRunner(hdfs, executor=backend, memory_budget_mb=budget)
        try:
            outcome = run_linkage_attack(
                runner,
                "input/train",
                "input/target",
                truth,
                params=SYNTH_ATTACK_PARAMS,
            )
        finally:
            runner.close()
        label = backend + (" (budgeted)" if budget else "")
        match = outcome.signature() == reference
        exact = outcome.blocking_exact in (True, None)
        ok = ok and match and exact
        lines.append(
            f"  {label:22s} signature {'==' if match else '!='} serial, "
            f"pairs scored/exact {outcome.pairs_scored}/{outcome.pairs_exact} "
            f"(cross product {outcome.cross_product})"
        )
    lines.append("attack selfcheck: " + ("ok" if ok else "FAILED"))
    if verbose:
        print("\n".join(lines))
    return ok


def deanonymization_attack_reference(
    training: TraceArray,
    target: TraceArray,
    ground_truth: dict[str, str],
    params: DJClusterParams | None = None,
    max_pois: int = 8,
    max_match_dist_m: float = 500.0,
) -> DeanonymizationResult:
    """The serial attack on trace arrays (the MR job's ground truth)."""
    from repro.attacks.deanonymization import deanonymization_attack

    return deanonymization_attack(
        GeolocatedDataset.from_array(training),
        GeolocatedDataset.from_array(target),
        ground_truth,
        params=params,
        max_pois=max_pois,
        max_match_dist_m=max_match_dist_m,
    )
