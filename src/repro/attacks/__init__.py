"""Inference attacks over geolocated datasets.

GEPETO's purpose is to let a data curator *evaluate* inference attacks
(Section II).  The clustering algorithms extract the Points Of Interest
of an individual — "one possible type of inference attack"; the modules
here implement that attack plus the extensions the paper's conclusion
plans: Mobility Markov Chains, next-location prediction and
de-anonymization (linking) attacks.

* :mod:`repro.attacks.poi` — POI extraction from clusters, with
  home/work labelling heuristics.
* :mod:`repro.attacks.mmc` — Mobility Markov Chains: a compact mobility
  model supporting prediction and fingerprint comparison.
* :mod:`repro.attacks.prediction` — next-location prediction evaluation.
* :mod:`repro.attacks.deanonymization` — linking pseudonymized trails to
  known users via MMC/POI fingerprints.
"""

from repro.attacks.poi import (
    PointOfInterestEstimate,
    extract_pois,
    poi_attack,
    label_home_work,
)
from repro.attacks.mmc import MobilityMarkovChain, build_mmc, mmc_distance
from repro.attacks.prediction import evaluate_next_place_prediction, PredictionReport
from repro.attacks.deanonymization import (
    DeanonymizationResult,
    deanonymization_attack,
    fingerprint_user,
)
from repro.attacks.social import ColocationParams, colocation_graph, contact_events
from repro.attacks.mmc_mr import run_mmc_mapreduce
from repro.attacks.semantics import (
    SemanticPlace,
    SemanticVisit,
    label_places,
    semantic_trail,
)

__all__ = [
    "PointOfInterestEstimate",
    "extract_pois",
    "poi_attack",
    "label_home_work",
    "MobilityMarkovChain",
    "build_mmc",
    "mmc_distance",
    "evaluate_next_place_prediction",
    "PredictionReport",
    "DeanonymizationResult",
    "deanonymization_attack",
    "fingerprint_user",
    "ColocationParams",
    "colocation_graph",
    "contact_events",
    "run_mmc_mapreduce",
    "SemanticPlace",
    "SemanticVisit",
    "label_places",
    "semantic_trail",
]
