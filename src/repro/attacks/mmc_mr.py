"""MapReduced Mobility Markov Chain learning (Section VIII future work).

"In the future we aim at integrating other inference techniques within
the MapReduced framework of GEPETO.  In particular, we want to develop
algorithms for learning a mobility model out of the mobility traces of
an individual, such as Mobility Markov Chains."

The MapReduce decomposition:

* **map** — each task processes one chunk: snaps its traces to the
  nearest POI within the attachment radius (one vectorized distance pass
  per chunk), collapses consecutive repeats per user, and emits one
  *visit fragment* ``(user -> (start_ts, state sequence))`` per user
  present in the chunk;
* **reduce** — each reducer receives all fragments of its users, stitches
  them in time order (collapsing duplicated states at chunk seams),
  counts visit-to-visit transitions and emits the per-user chain.

Unlike the map-only jobs, this decomposition is *exact*: the reducer
holds every fragment of a user, so the result equals the sequential
:func:`repro.attacks.mmc.build_mmc` for any chunking of a time-sorted
dataset.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.mmc import MobilityMarkovChain
from repro.geo.distance import haversine_m
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.types import Chunk

__all__ = ["run_mmc_mapreduce", "POI_COORDS_CACHE_KEY", "VisitFragmentMapper", "MMCReducer"]

#: Distributed-cache key under which the driver publishes the POI table.
POI_COORDS_CACHE_KEY = "mmc.poi_coords"


class VisitFragmentMapper(Mapper):
    """Emit per-user POI-visit fragments for one chunk (vectorized)."""

    def setup(self, ctx) -> None:
        self._pois = np.asarray(ctx.cache.get(POI_COORDS_CACHE_KEY), dtype=np.float64)
        self._radius = ctx.conf.get_float("mmc.attach_radius_m", 200.0)

    def run(self, chunk: Chunk, ctx) -> None:
        array = chunk.trace_array()
        n = len(array)
        if n == 0 or len(self._pois) == 0:
            return
        # One broadcasted distance evaluation: (n_traces, n_pois).
        d = np.atleast_2d(
            haversine_m(
                array.latitude[:, None],
                array.longitude[:, None],
                self._pois[None, :, 0],
                self._pois[None, :, 1],
            )
        )
        nearest = np.argmin(d, axis=1)
        within = d[np.arange(n), nearest] <= self._radius
        users = array.user_index
        ts = array.timestamp
        for uidx in np.unique(users):
            mask = (users == uidx) & within
            if not mask.any():
                continue
            # The chunk slices a (user, time)-sorted file, so this user's
            # rows are already in time order within the chunk.
            states = nearest[mask]
            stamps = ts[mask]
            change = np.ones(len(states), dtype=bool)
            change[1:] = states[1:] != states[:-1]
            fragment_states = states[change].astype(np.int64)
            ctx.emit(
                array.users[int(uidx)],
                (float(stamps[0]), fragment_states),
                nbytes=int(fragment_states.nbytes + 8),
                n_records=int(len(fragment_states)),
            )


class MMCReducer(Reducer):
    """Stitch a user's fragments and count transitions."""

    def setup(self, ctx) -> None:
        self._n_states = len(np.asarray(ctx.cache.get(POI_COORDS_CACHE_KEY)))
        self._smoothing = ctx.conf.get_float("mmc.smoothing", 0.0)

    def reduce(self, key, values, ctx) -> None:
        fragments = sorted(values, key=lambda fragment: fragment[0])
        stitched: list[int] = []
        for _start, states in fragments:
            for state in states:
                if not stitched or stitched[-1] != state:
                    stitched.append(int(state))
        seq = np.array(stitched, dtype=np.int64)
        n = self._n_states
        counts = np.full((n, n), float(self._smoothing))
        if len(seq) >= 2:
            np.add.at(counts, (seq[:-1], seq[1:]), 1.0)
        visit_counts = np.bincount(seq, minlength=n).astype(np.float64)
        ctx.emit(key, (counts, visit_counts), nbytes=int(counts.nbytes + visit_counts.nbytes))


def run_mmc_mapreduce(
    runner: JobRunner,
    input_path: str,
    poi_coords: np.ndarray,
    attach_radius_m: float = 200.0,
    smoothing: float = 0.0,
    num_reducers: int | None = None,
    output_path: str = "tmp/mmc/models",
    history_path: str | None = None,
) -> dict[str, MobilityMarkovChain]:
    """Learn one MMC per user over a shared POI state space, at scale.

    ``poi_coords`` is the (n_pois, 2) state table — typically the cluster
    centroids of a prior (MapReduced) DJ-Cluster run.  Returns a chain
    for every user with at least one attached trace.  The runner's job
    history records the run; pass ``history_path`` to export it
    (``.json``/``.jsonl``), like the other algorithm drivers.
    """
    poi_coords = np.asarray(poi_coords, dtype=np.float64)
    if poi_coords.ndim != 2 or poi_coords.shape[1] != 2:
        raise ValueError("poi_coords must be an (n, 2) array")
    if len(poi_coords) == 0:
        raise ValueError("MMC learning needs at least one POI state")
    runner.cache.replace(POI_COORDS_CACHE_KEY, poi_coords)
    runner.hdfs.delete(output_path, missing_ok=True)
    runner.run(
        JobSpec(
            name="mmc-learning",
            mapper=VisitFragmentMapper,
            reducer=MMCReducer,
            input_paths=[input_path],
            output_path=output_path,
            conf=Configuration(
                {"mmc.attach_radius_m": attach_radius_m, "mmc.smoothing": smoothing}
            ),
            num_reducers=num_reducers or min(8, runner.cluster.total_reduce_slots()),
            map_cost_factor=1.8,  # distance matrix per chunk
        )
    )
    models: dict[str, MobilityMarkovChain] = {}
    n = len(poi_coords)
    for user, (counts, visit_counts) in runner.hdfs.read_records(output_path):
        row_sums = counts.sum(axis=1, keepdims=True)
        transitions = np.where(
            row_sums > 0, counts / np.where(row_sums == 0, 1, row_sums), 1.0 / n
        )
        models[str(user)] = MobilityMarkovChain(
            states=poi_coords.copy(),
            transitions=transitions,
            visit_counts=visit_counts,
        )
    if history_path is not None:
        runner.history.save(history_path)
    return models
