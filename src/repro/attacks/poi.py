"""POI extraction: from clusters to labelled points of interest.

"Currently the clustering algorithms that we have implemented can be used
primarily to extract the POIs of an individual from his trail of mobility
traces" (Section VIII).  A POI estimate summarizes one cluster: its
centroid, how many traces support it, the total dwell time and the
hour-of-day visit histogram — enough to run the classic home/work
labelling heuristic (home: night-time mass; work: working-hours mass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.djcluster import DJClusterParams, DJClusterResult, djcluster_sequential
from repro.geo.trace import Trail, TraceArray

__all__ = [
    "PointOfInterestEstimate",
    "extract_pois",
    "extract_pois_kmeans",
    "label_home_work",
    "poi_attack",
    "NIGHT_HOURS",
    "WORK_HOURS",
]

#: Hours counted as "night" (home heuristic): 22:00–06:00 UTC-local.
NIGHT_HOURS = frozenset({22, 23, 0, 1, 2, 3, 4, 5})
#: Hours counted as "working hours" (work heuristic): 09:00–17:00.
WORK_HOURS = frozenset(range(9, 18))


@dataclass
class PointOfInterestEstimate:
    """One inferred POI of an individual."""

    latitude: float
    longitude: float
    n_traces: int
    dwell_time_s: float
    hour_histogram: np.ndarray  # 24 bins of trace counts
    label: str = "poi"
    cluster_index: int = -1

    @property
    def coordinate(self) -> tuple[float, float]:
        return (self.latitude, self.longitude)

    def night_fraction(self) -> float:
        total = self.hour_histogram.sum()
        if total == 0:
            return 0.0
        return float(sum(self.hour_histogram[h] for h in NIGHT_HOURS) / total)

    def work_fraction(self) -> float:
        total = self.hour_histogram.sum()
        if total == 0:
            return 0.0
        return float(sum(self.hour_histogram[h] for h in WORK_HOURS) / total)


def _hours_of(timestamps: np.ndarray) -> np.ndarray:
    """Hour-of-day (0–23, UTC) of each timestamp, vectorized."""
    return ((timestamps // 3600) % 24).astype(np.int64)


def _dwell_time(timestamps: np.ndarray, gap_s: float = 1800.0) -> float:
    """Total time spent in a cluster: sum of visit spans.

    Consecutive cluster timestamps more than ``gap_s`` apart start a new
    visit, so commuting away and returning does not inflate the dwell.
    """
    if len(timestamps) < 2:
        return 0.0
    ts = np.sort(timestamps)
    gaps = np.diff(ts)
    return float(gaps[gaps <= gap_s].sum())


def extract_pois(result: DJClusterResult, min_traces: int = 1) -> list[PointOfInterestEstimate]:
    """Summarize each cluster of a DJ-Cluster result as a POI estimate."""
    points = result.preprocessed.coordinates()
    timestamps = result.preprocessed.timestamp
    pois: list[PointOfInterestEstimate] = []
    for idx, ids in enumerate(result.clusters):
        if len(ids) < min_traces:
            continue
        center = points[ids].mean(axis=0)
        hours = _hours_of(timestamps[ids])
        histogram = np.bincount(hours, minlength=24)
        pois.append(
            PointOfInterestEstimate(
                latitude=float(center[0]),
                longitude=float(center[1]),
                n_traces=int(len(ids)),
                dwell_time_s=_dwell_time(timestamps[ids]),
                hour_histogram=histogram,
                cluster_index=idx,
            )
        )
    pois.sort(key=lambda p: -p.n_traces)
    return pois


def label_home_work(pois: list[PointOfInterestEstimate]) -> list[PointOfInterestEstimate]:
    """Label the most plausible home and work POIs in place.

    Home is the POI with the largest night-time trace mass; work is the
    remaining POI with the largest working-hours mass.  Other POIs keep
    the generic ``"poi"`` label.  Returns the same list for chaining.
    """
    if not pois:
        return pois
    for p in pois:
        p.label = "poi"
    by_night = max(pois, key=lambda p: (p.night_fraction() * p.n_traces, p.n_traces))
    by_night.label = "home"
    candidates = [p for p in pois if p is not by_night]
    if candidates:
        by_work = max(candidates, key=lambda p: (p.work_fraction() * p.n_traces, p.n_traces))
        if by_work.work_fraction() > 0:
            by_work.label = "work"
    return pois


def poi_attack(
    trail: Trail | TraceArray,
    params: DJClusterParams | None = None,
    min_traces: int = 1,
) -> list[PointOfInterestEstimate]:
    """The end-to-end POI inference attack on one individual's trail.

    Runs DJ-Cluster on the trail (with preprocessing) and labels the
    resulting POIs.  This is the sequential attack path; for dataset-scale
    attacks use the MapReduced DJ-Cluster and :func:`extract_pois`.
    """
    if params is None:
        params = DJClusterParams()
    array = trail.traces if isinstance(trail, Trail) else trail
    result = djcluster_sequential(array, params)
    return label_home_work(extract_pois(result, min_traces=min_traces))


def extract_pois_kmeans(
    array: TraceArray,
    k: int,
    metric: str = "squared_euclidean",
    min_traces: int = 1,
    seed: int = 0,
    preprocess_params: DJClusterParams | None = None,
) -> list[PointOfInterestEstimate]:
    """POI extraction via k-means instead of DJ-Cluster.

    GEPETO's other clusterer applied to the same attack, kept for the
    comparison the paper motivates DJ-Cluster with: k-means needs ``k``
    known in advance, centroids are dragged by outliers and transit
    points, and there is no noise concept — every trace lands in some
    cluster.  The clusterer ablation bench quantifies the gap.

    ``preprocess_params`` optionally applies the same speed/dedup filters
    DJ-Cluster uses (recommended, else commute traces dominate).
    """
    from repro.algorithms.djcluster import preprocess_array
    from repro.algorithms.kmeans import assign_points, kmeans_sequential

    if preprocess_params is not None:
        _, array = preprocess_array(array, preprocess_params)
    array = array.sort_by_time()
    if len(array) < k:
        return []
    points = array.coordinates()
    result = kmeans_sequential(points, k, metric, seed=seed)
    assignment = assign_points(points, result.centroids, metric)
    timestamps = array.timestamp
    pois: list[PointOfInterestEstimate] = []
    for cid in range(k):
        members = np.flatnonzero(assignment == cid)
        if len(members) < min_traces:
            continue
        hours = _hours_of(timestamps[members])
        pois.append(
            PointOfInterestEstimate(
                latitude=float(result.centroids[cid, 0]),
                longitude=float(result.centroids[cid, 1]),
                n_traces=int(len(members)),
                dwell_time_s=_dwell_time(timestamps[members]),
                hour_histogram=np.bincount(hours, minlength=24),
                cluster_index=cid,
            )
        )
    pois.sort(key=lambda p: -p.n_traces)
    return pois
